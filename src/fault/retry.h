// Resilience policies over the fault layer: bounded retries with
// deterministic exponential backoff (seeded jitter), per-call virtual
// deadlines, and a per-endpoint circuit breaker.
//
// Time here is *virtual*: an attempt that "times out" charges its budget
// to the call's latency account instead of sleeping, so chaos sweeps run
// at full speed and a fate is a pure function of (plan, site, key,
// policy). That purity is what `fate_of` exposes — concurrent callers
// (GeoService measurements) can compute fates with no shared state,
// while sequential stages wrap fate_of in a `Retrier` to add breaker
// state and metrics.
//
// Determinism discipline for breakers: a CircuitBreaker is driven by the
// order of calls it sees, so a Retrier must only ever be owned by a
// deterministic unit of work — a serial stage, or one shard of a stable
// shard plan (serial execution runs the same shards inline in shard
// order, so per-shard breaker trajectories are identical at any thread
// count). Never share a Retrier across shards.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace cbwt::fault {

struct RetryPolicy {
  std::uint32_t max_attempts = 3;
  /// Virtual cost of a successful (or erroring) attempt.
  double base_latency_ms = 1.0;
  /// Virtual cost of a timed-out attempt (the attempt budget).
  double attempt_timeout_ms = 250.0;
  /// Extra virtual latency of a SlowResponse attempt.
  double slow_penalty_ms = 100.0;
  /// Exponential backoff between attempts: base * multiplier^n, capped.
  double base_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
  /// Backoff jitter fraction: each wait is scaled by a seeded factor in
  /// [1 - jitter, 1 + jitter], derived statelessly from the call key.
  double jitter = 0.5;
  /// Total virtual budget of the call across attempts and backoffs;
  /// 0 = unbounded. Exceeding it fails the call as a Timeout even if
  /// attempts remain.
  double deadline_ms = 0.0;
};

/// The complete, pre-computed trajectory of one logical call.
struct CallFate {
  FaultKind failure = FaultKind::None;  ///< None = the call succeeded
  bool stale = false;                   ///< success carried stale data
  bool breaker_rejected = false;        ///< refused without an attempt
  std::uint32_t attempts = 1;           ///< attempts consumed (>= 1 unless rejected)
  std::uint32_t injected = 0;           ///< faulted attempts along the way
  double latency_ms = 0.0;              ///< virtual latency incl. backoff

  [[nodiscard]] bool ok() const noexcept { return failure == FaultKind::None; }
};

/// Computes the fate of call `key` at `site`: walks the per-attempt
/// fault decisions, charging attempt costs and jittered backoff until an
/// attempt succeeds, attempts run out, or the deadline is blown. Pure
/// function of its arguments — thread-safe, allocation-free, and
/// identical no matter which thread or order evaluates it. A disabled
/// site (all rates zero) short-circuits to a 1-attempt success.
[[nodiscard]] CallFate fate_of(const FaultPlan& plan, const Site& site,
                               std::uint64_t key, const RetryPolicy& policy) noexcept;

struct BreakerPolicy {
  /// Consecutive failed calls (exhausted retries) that open the breaker.
  std::uint32_t failure_threshold = 5;
  /// Calls rejected while open before one half-open probe is let through.
  std::uint32_t open_calls = 16;
};

/// Classic three-state breaker, driven by call order (see the file
/// comment for where that order is allowed to come from). There is no
/// wall clock in the model, so the open->half-open transition counts
/// rejected calls instead of elapsed time.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed, Open, HalfOpen };

  explicit CircuitBreaker(BreakerPolicy policy = {}) : policy_(policy) {}

  /// Consumes one call slot. False = rejected (breaker open); while
  /// open, the `open_calls`-th rejection arms a half-open probe, so the
  /// next call is allowed through as the trial request.
  [[nodiscard]] bool allow() noexcept;
  /// Reports the allowed call's result, driving the state machine.
  void on_success() noexcept;
  void on_failure() noexcept;

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] std::uint32_t consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

 private:
  BreakerPolicy policy_;
  State state_ = State::Closed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t rejected_while_open_ = 0;
};

[[nodiscard]] std::string_view to_string(CircuitBreaker::State state) noexcept;

/// Aggregate counters of one Retrier (one site within one stage/shard).
struct RetryStats {
  std::uint64_t calls = 0;
  std::uint64_t injected = 0;   ///< faulted attempts
  std::uint64_t retried = 0;    ///< attempts beyond the first
  std::uint64_t exhausted = 0;  ///< calls that failed after all retries
  std::uint64_t breaker_rejected = 0;
  std::uint64_t degraded = 0;   ///< calls whose caller served degraded output
  double latency_ms = 0.0;      ///< total virtual latency
};

/// Per-site metric handles, resolved once (registry mutex) and updated
/// via relaxed atomics. All-null when no registry is attached or the
/// plan is disabled — which is what keeps a zero-rate run's registry
/// byte-identical to a no-fault-layer run: the cbwt_fault_* names are
/// never even created.
struct SiteMetrics {
  obs::Counter* injected = nullptr;
  obs::Counter* retried = nullptr;
  obs::Counter* exhausted = nullptr;
  obs::Counter* degraded = nullptr;
  obs::Counter* breaker_rejected = nullptr;
  obs::Histogram* retry_latency_seconds = nullptr;

  /// Resolves cbwt_fault_<site>_{injected,retried,exhausted,degraded,
  /// breaker_rejected}_total and cbwt_fault_<site>_retry_latency_seconds
  /// (virtual latency, observed in seconds per the obs `_seconds`
  /// duration convention; RetryStats keeps its millisecond field).
  /// Null registry -> all-null handles (every update is a null check).
  [[nodiscard]] static SiteMetrics resolve(obs::Registry* registry,
                                           std::string_view site);

  /// Publishes one fate (thread-safe; counters are atomic).
  void count(const CallFate& fate) const noexcept;
  void count_degraded(std::uint64_t n = 1) const noexcept;
};

/// Sequential resilience wrapper for one site: fate_of + per-endpoint
/// circuit breakers + stats + metrics. NOT thread-safe — own one per
/// serial stage or per shard (see file comment).
class Retrier {
 public:
  /// Disabled: every call() is a 1-attempt success with no bookkeeping.
  Retrier() = default;
  /// `plan` may be null (disabled). Metrics resolve only when the plan
  /// is live, preserving the zero-cost default.
  Retrier(const FaultPlan* plan, std::string_view site_label, RetryPolicy retry = {},
          BreakerPolicy breaker = {}, obs::Registry* registry = nullptr);

  [[nodiscard]] bool enabled() const noexcept {
    return plan_ != nullptr && site_.rates.any();
  }

  /// Decides call `key` against `endpoint`'s breaker: rejected calls
  /// fail fast (breaker_rejected fate), allowed calls get their fate_of
  /// trajectory and drive the breaker with the result.
  [[nodiscard]] CallFate call(std::uint64_t endpoint, std::uint64_t key);

  /// Caller accounting: the call's consumer served degraded output
  /// (dropped a flow, reported unlocated, fell back to stale data).
  void count_degraded(std::uint64_t n = 1) noexcept;

  [[nodiscard]] CircuitBreaker& breaker(std::uint64_t endpoint);
  [[nodiscard]] const RetryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const RetryPolicy& retry_policy() const noexcept { return retry_; }

 private:
  const FaultPlan* plan_ = nullptr;
  Site site_;
  RetryPolicy retry_;
  BreakerPolicy breaker_policy_;
  SiteMetrics metrics_;
  std::unordered_map<std::uint64_t, CircuitBreaker> breakers_;
  RetryStats stats_;
};

}  // namespace cbwt::fault
