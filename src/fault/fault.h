// Deterministic fault injection for the external-facing services the
// paper's pipeline depends on: DNS lookups, passive-DNS replication
// feeds, the RIPE-IPmap-style probe panels and ISP NetFlow export. The
// real study leaned on all four and simply assumed they worked; this
// layer lets a reproduction ask how loss, timeouts and stale records
// bias the border-crossing numbers — reproducibly.
//
// The discipline mirrors the runtime's shard_rng rule: every fault
// decision is a *stateless* pure function of
//
//   (plan seed, site label, call key, attempt)
//
// hashed through splitmix64 — never a draw from a pipeline Rng and never
// a function of thread interleaving. Consequences, relied on by the
// chaos harness in tests/test_fault.cpp:
//
//   * outcomes under a fixed (seed, plan) are bit-identical at any
//     thread count (decisions don't depend on execution order);
//   * fault sets are *nested* across rates — a call faulted at rate r is
//     still faulted at every rate >= r, because the decision compares
//     one rate-independent uniform against the cumulative rate — which
//     is what makes degradation provably monotone;
//   * a plan with every rate at zero decides None without touching any
//     RNG, so the zero-rate run is byte-identical to a no-plan run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace cbwt::fault {

/// What the injector did to one attempt of one call.
enum class FaultKind : std::uint8_t {
  None,          ///< the attempt succeeds
  Timeout,       ///< no answer within the attempt budget (retryable)
  Error,         ///< immediate failure, e.g. SERVFAIL / probe loss (retryable)
  SlowResponse,  ///< succeeds but late (costs latency, may blow a deadline)
  StaleData,     ///< succeeds with out-of-date data (caller degrades)
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// Per-kind probabilities of one injection site, each in [0, 1] with
/// total() <= 1. A single uniform draw is mapped through the cumulative
/// thresholds in declaration order (timeout, error, slow, stale).
struct SiteRates {
  double timeout = 0.0;
  double error = 0.0;
  double slow = 0.0;
  double stale = 0.0;

  [[nodiscard]] double total() const noexcept {
    return timeout + error + slow + stale;
  }
  [[nodiscard]] bool any() const noexcept { return total() > 0.0; }
};

/// Well-known injection sites. Each maps to one external-facing service
/// of the pipeline; per-site counters are named cbwt_fault_<site>_*.
namespace sites {
/// Authoritative DNS resolution (subscriber lookups in NetFlow generation).
inline constexpr std::string_view kDns = "dns";
/// Passive-DNS replication feed (lost or stale-window observations).
inline constexpr std::string_view kPdns = "pdns";
/// Individual probes of one active-geolocation panel (probe loss).
inline constexpr std::string_view kGeoProbe = "geoloc_probe";
/// One whole active measurement (panel scheduling, IPmap-engine call).
inline constexpr std::string_view kGeoMeasure = "geoloc_measure";
/// NetFlow export from router to collector (dropped exports).
inline constexpr std::string_view kNetflowExport = "netflow_export";
}  // namespace sites

/// A site's compiled fault model: the label hash the stateless decision
/// mixes in, plus the rates in force there. Resolve once per stage or
/// shard, not per call.
struct Site {
  std::uint64_t hash = 0;
  SiteRates rates;
};

/// The full injection plan of a run: one seed (independent of the world
/// seed, so fault scenarios sweep without rebuilding the world) plus
/// default rates and optional per-site overrides.
struct FaultPlan {
  std::uint64_t seed = 0xFA017ULL;
  SiteRates default_rates;
  std::map<std::string, SiteRates, std::less<>> site_rates;

  /// True when any site can inject anything. Every integration point
  /// checks this first; a disabled plan costs one branch and leaves the
  /// metrics registry untouched (the zero-cost-default contract).
  [[nodiscard]] bool enabled() const noexcept;

  /// Rates in force at `label` (the override, else the defaults).
  [[nodiscard]] const SiteRates& rates_for(std::string_view label) const noexcept;

  /// Compiled site: label hash + rates.
  [[nodiscard]] Site site(std::string_view label) const noexcept;

  /// A plan injecting all four kinds in equal shares totalling `rate`
  /// at every site — the knob the chaos sweeps turn.
  [[nodiscard]] static FaultPlan uniform(std::uint64_t seed, double rate);

  /// Plan from the environment: CBWT_FAULT_RATE (total rate, uniform
  /// across kinds and sites; unset or <= 0 disables) and CBWT_FAULT_SEED
  /// (defaults to the FaultPlan default seed). The CLI/env knob for
  /// chaos-smoke CI runs and fault-rate sweeps.
  [[nodiscard]] static FaultPlan from_env();
};

/// Stable hash of a site label (FNV-1a folded through splitmix64).
[[nodiscard]] std::uint64_t site_hash(std::string_view label) noexcept;

/// The stateless uniform behind every decision: u in [0, 1) as a pure
/// function of (seed, site, key, salt). Exposed for derived quantities
/// that must stay nested/deterministic (backoff jitter, stale lags).
[[nodiscard]] double stateless_uniform(std::uint64_t seed, std::uint64_t site_hash,
                                       std::uint64_t key, std::uint64_t salt) noexcept;

/// Decides the fate of attempt `attempt` of call `key` at `site`.
/// Deterministic, thread-safe, no state anywhere. The decision uniform
/// is independent of the rates, so raising a rate only ever converts
/// None outcomes into faults (nesting; see file comment).
[[nodiscard]] FaultKind decide(std::uint64_t plan_seed, const Site& site,
                               std::uint64_t key, std::uint32_t attempt) noexcept;

}  // namespace cbwt::fault
