#include "fault/retry.h"

#include <algorithm>
#include <array>
#include <string>

#include "util/contract.h"

namespace cbwt::fault {

namespace {

/// Salt space for backoff jitter, disjoint from attempt indices (which
/// are small) so the jitter stream never aliases a decision stream.
constexpr std::uint64_t kJitterSalt = 0x4A177E5000000000ULL;

/// Buckets for the per-call virtual latency histogram (seconds; the
/// engine computes in ms, the metric exports in the `_seconds` unit).
constexpr std::array<double, 8> kLatencyBoundsSeconds = {
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 2.5};

}  // namespace

CallFate fate_of(const FaultPlan& plan, const Site& site, std::uint64_t key,
                 const RetryPolicy& policy) noexcept {
  CallFate fate;
  if (!site.rates.any()) return fate;  // zero-cost default: 1 attempt, success

  CBWT_EXPECTS(policy.max_attempts >= 1);
  fate.attempts = 0;
  double backoff = policy.base_backoff_ms;
  for (std::uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    ++fate.attempts;
    const FaultKind kind = decide(plan.seed, site, key, attempt);
    switch (kind) {
      case FaultKind::None:
        fate.latency_ms += policy.base_latency_ms;
        fate.failure = FaultKind::None;
        return fate;
      case FaultKind::SlowResponse:
        fate.latency_ms += policy.base_latency_ms + policy.slow_penalty_ms;
        ++fate.injected;
        if (policy.deadline_ms > 0.0 && fate.latency_ms >= policy.deadline_ms) {
          // The late answer arrived after the caller's budget: a timeout
          // from the caller's point of view.
          fate.failure = FaultKind::Timeout;
          return fate;
        }
        fate.failure = FaultKind::None;
        return fate;
      case FaultKind::StaleData:
        fate.latency_ms += policy.base_latency_ms;
        ++fate.injected;
        fate.stale = true;
        fate.failure = FaultKind::None;
        return fate;
      case FaultKind::Timeout:
        fate.latency_ms += policy.attempt_timeout_ms;
        ++fate.injected;
        break;
      case FaultKind::Error:
        fate.latency_ms += policy.base_latency_ms;
        ++fate.injected;
        break;
    }
    fate.failure = kind;  // provisional: stands if this was the last chance
    if (policy.deadline_ms > 0.0 && fate.latency_ms >= policy.deadline_ms) {
      fate.failure = FaultKind::Timeout;
      return fate;
    }
    if (attempt + 1 < policy.max_attempts) {
      const double u =
          stateless_uniform(plan.seed, site.hash, key, kJitterSalt | attempt);
      const double factor = 1.0 + policy.jitter * (2.0 * u - 1.0);
      fate.latency_ms += std::min(backoff, policy.max_backoff_ms) * factor;
      backoff *= policy.backoff_multiplier;
      if (policy.deadline_ms > 0.0 && fate.latency_ms >= policy.deadline_ms) {
        fate.failure = FaultKind::Timeout;
        return fate;
      }
    }
  }
  return fate;  // exhausted: failure holds the last attempt's kind
}

bool CircuitBreaker::allow() noexcept {
  switch (state_) {
    case State::Closed:
    case State::HalfOpen:
      return true;
    case State::Open:
      if (++rejected_while_open_ >= policy_.open_calls) {
        // Cooldown served: arm the half-open probe for the next call.
        state_ = State::HalfOpen;
        rejected_while_open_ = 0;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::on_success() noexcept {
  consecutive_failures_ = 0;
  state_ = State::Closed;
}

void CircuitBreaker::on_failure() noexcept {
  if (state_ == State::HalfOpen) {
    // The probe failed: straight back to open for another cooldown.
    state_ = State::Open;
    rejected_while_open_ = 0;
    return;
  }
  if (++consecutive_failures_ >= policy_.failure_threshold) {
    state_ = State::Open;
    rejected_while_open_ = 0;
  }
}

std::string_view to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::Closed: return "closed";
    case CircuitBreaker::State::Open: return "open";
    case CircuitBreaker::State::HalfOpen: return "half-open";
  }
  return "?";
}

SiteMetrics SiteMetrics::resolve(obs::Registry* registry, std::string_view site) {
  SiteMetrics metrics;
  if (registry == nullptr) return metrics;
  const std::string prefix = "cbwt_fault_" + std::string(site);
  metrics.injected = &registry->counter(prefix + "_injected_total");
  metrics.retried = &registry->counter(prefix + "_retried_total");
  metrics.exhausted = &registry->counter(prefix + "_exhausted_total");
  metrics.degraded = &registry->counter(prefix + "_degraded_total");
  metrics.breaker_rejected = &registry->counter(prefix + "_breaker_rejected_total");
  metrics.retry_latency_seconds =
      &registry->histogram(prefix + "_retry_latency_seconds", kLatencyBoundsSeconds);
  return metrics;
}

void SiteMetrics::count(const CallFate& fate) const noexcept {
  if (injected == nullptr) return;
  if (fate.breaker_rejected) {
    breaker_rejected->add(1);
    return;
  }
  if (fate.injected > 0) injected->add(fate.injected);
  if (fate.attempts > 1) retried->add(fate.attempts - 1);
  if (!fate.ok()) exhausted->add(1);
  if (fate.attempts > 1) retry_latency_seconds->observe(fate.latency_ms / 1000.0);
}

void SiteMetrics::count_degraded(std::uint64_t n) const noexcept {
  if (degraded != nullptr && n > 0) degraded->add(n);
}

Retrier::Retrier(const FaultPlan* plan, std::string_view site_label, RetryPolicy retry,
                 BreakerPolicy breaker, obs::Registry* registry)
    : plan_(plan), retry_(retry), breaker_policy_(breaker) {
  if (plan_ != nullptr) {
    site_ = plan_->site(site_label);
    // Handles resolve only for a live site: a zero-rate plan must leave
    // the registry's name set untouched (byte-identical contract).
    if (site_.rates.any()) metrics_ = SiteMetrics::resolve(registry, site_label);
  }
}

CallFate Retrier::call(std::uint64_t endpoint, std::uint64_t key) {
  CallFate fate;
  if (!enabled()) return fate;
  ++stats_.calls;
  CircuitBreaker& endpoint_breaker = breaker(endpoint);
  if (!endpoint_breaker.allow()) {
    fate.breaker_rejected = true;
    fate.failure = FaultKind::Error;
    fate.attempts = 0;
    ++stats_.breaker_rejected;
    metrics_.count(fate);
    return fate;
  }
  fate = fate_of(*plan_, site_, key, retry_);
  if (fate.ok()) {
    endpoint_breaker.on_success();
  } else {
    endpoint_breaker.on_failure();
    ++stats_.exhausted;
  }
  stats_.injected += fate.injected;
  stats_.retried += fate.attempts > 1 ? fate.attempts - 1 : 0;
  stats_.latency_ms += fate.latency_ms;
  metrics_.count(fate);
  return fate;
}

void Retrier::count_degraded(std::uint64_t n) noexcept {
  stats_.degraded += n;
  metrics_.count_degraded(n);
}

CircuitBreaker& Retrier::breaker(std::uint64_t endpoint) {
  const auto it = breakers_.find(endpoint);
  if (it != breakers_.end()) return it->second;
  return breakers_.emplace(endpoint, CircuitBreaker(breaker_policy_)).first->second;
}

}  // namespace cbwt::fault
