#include "world/names.h"

#include <array>

#include "util/strings.h"

namespace cbwt::world {

namespace {

constexpr std::array<std::string_view, 14> kAdStems = {
    "admetrix", "adnexus",  "bidwave",  "clickforge", "admuse",  "pubspring",
    "adcastle", "bannerly", "admarket", "adpulse",    "spotgrid", "reachly",
    "advista",  "promonet"};

constexpr std::array<std::string_view, 10> kDspStems = {
    "bidstream", "demandhub", "rtbworks", "dspring", "bidlogic",
    "auctionor", "yieldmax",  "bidcore",  "demandr", "tradebid"};

constexpr std::array<std::string_view, 8> kSyncStems = {
    "syncpixel", "cookielink", "matchbox", "idbridge",
    "usersync",  "pixelsync",  "idgraph",  "cmatch"};

constexpr std::array<std::string_view, 10> kAnalyticsStems = {
    "sitemetric", "webgauge", "statify", "tracklens", "pagemeter",
    "visitlog",   "metricly", "webpulse", "countwise", "heatsense"};

constexpr std::array<std::string_view, 10> kCleanStems = {
    "livechat", "commentbox", "fontserve", "imagecdn", "videohost",
    "mapwidget", "payportal",  "helpdesk",  "feedbackr", "newsletterly"};

constexpr std::array<std::string_view, 6> kSuffixes = {"com", "net", "io",
                                                       "co",  "biz", "xyz"};

constexpr std::array<std::string_view, 8> kAdHosts = {
    "ads", "static", "cdn", "pixel", "tag", "srv", "delivery", "banners"};
constexpr std::array<std::string_view, 6> kDspHosts = {"bid",   "rtb", "x",
                                                       "match", "dsp", "exch"};
constexpr std::array<std::string_view, 6> kSyncHosts = {"sync", "cm",  "id",
                                                        "match", "px", "csync"};
constexpr std::array<std::string_view, 5> kAnalyticsHosts = {"stats", "collect",
                                                             "beacon", "t", "m"};
constexpr std::array<std::string_view, 5> kCleanHosts = {"widget", "api", "embed",
                                                         "app", "assets"};

template <std::size_t N>
std::string_view pick_one(util::Rng& rng, const std::array<std::string_view, N>& pool) {
  return pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
}

}  // namespace

std::string make_org_name(util::Rng& rng, OrgRole role, std::uint32_t index) {
  std::string_view stem;
  switch (role) {
    case OrgRole::AdNetwork: stem = pick_one(rng, kAdStems); break;
    case OrgRole::Dsp: stem = pick_one(rng, kDspStems); break;
    case OrgRole::SyncService: stem = pick_one(rng, kSyncStems); break;
    case OrgRole::Analytics: stem = pick_one(rng, kAnalyticsStems); break;
    case OrgRole::CleanService: stem = pick_one(rng, kCleanStems); break;
  }
  return std::string(stem) + std::to_string(index);
}

std::string make_domain_suffix(util::Rng& rng) {
  // Weighted towards .com/.net as in the wild.
  const double roll = rng.next_double();
  if (roll < 0.55) return "com";
  if (roll < 0.80) return "net";
  return std::string(pick_one(rng, kSuffixes));
}

std::string make_host_label(util::Rng& rng, OrgRole role, std::uint32_t index) {
  std::string_view label;
  switch (role) {
    case OrgRole::AdNetwork: label = pick_one(rng, kAdHosts); break;
    case OrgRole::Dsp: label = pick_one(rng, kDspHosts); break;
    case OrgRole::SyncService: label = pick_one(rng, kSyncHosts); break;
    case OrgRole::Analytics: label = pick_one(rng, kAnalyticsHosts); break;
    case OrgRole::CleanService: label = pick_one(rng, kCleanHosts); break;
  }
  std::string out(label);
  if (index > 0) out += std::to_string(index);
  return out;
}

std::string make_publisher_domain(util::Rng& rng, std::string_view topic,
                                  std::uint32_t index, std::string_view country_code) {
  static constexpr std::array<std::string_view, 6> kShapes = {
      "daily", "my", "best", "the", "go", "top"};
  std::string name = std::string(pick_one(rng, kShapes)) + std::string(topic);
  // Strip spaces from multi-word topics ("sexual orientation").
  std::string compact;
  for (const char c : name) {
    if (c != ' ') compact += c;
  }
  compact += std::to_string(index);
  // A third of sites use their national ccTLD, the rest .com/.net.
  const double roll = rng.next_double();
  if (roll < 0.33) {
    compact += "." + util::to_lower(country_code);
  } else if (roll < 0.85) {
    compact += ".com";
  } else {
    compact += ".net";
  }
  return compact;
}

std::string make_datacenter_name(std::string_view country_code, std::uint32_t index,
                                 std::string_view owner) {
  return util::to_lower(country_code) + std::to_string(index) + "-" + std::string(owner);
}

}  // namespace cbwt::world
