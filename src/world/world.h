// The built synthetic internet plus its lookup indices, and the builder
// that constructs it deterministically from a WorldConfig.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/prefix_trie.h"
#include "world/address_plan.h"
#include "world/config.h"
#include "world/types.h"

namespace cbwt::world {

namespace detail {
class Builder;
}

/// Immutable after construction; downstream stages only read it.
class World {
 public:
  friend class detail::Builder;
  friend World build_world(const WorldConfig& config);

  [[nodiscard]] const WorldConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<CloudProvider>& clouds() const noexcept { return clouds_; }
  [[nodiscard]] const std::vector<Datacenter>& datacenters() const noexcept {
    return datacenters_;
  }
  [[nodiscard]] const std::vector<Organization>& orgs() const noexcept { return orgs_; }
  [[nodiscard]] const std::vector<TrackerDomain>& domains() const noexcept { return domains_; }
  [[nodiscard]] const std::vector<Server>& servers() const noexcept { return servers_; }
  [[nodiscard]] const std::vector<Publisher>& publishers() const noexcept {
    return publishers_;
  }
  [[nodiscard]] const std::vector<ExtensionUser>& users() const noexcept { return users_; }
  [[nodiscard]] const AddressPlan& addresses() const noexcept { return addresses_; }

  [[nodiscard]] const Datacenter& datacenter(DatacenterId id) const { return datacenters_.at(id); }
  [[nodiscard]] const Organization& org(OrgId id) const { return orgs_.at(id); }
  [[nodiscard]] const TrackerDomain& domain(DomainId id) const { return domains_.at(id); }
  [[nodiscard]] const Server& server(ServerId id) const { return servers_.at(id); }
  [[nodiscard]] const Publisher& publisher(PublisherId id) const { return publishers_.at(id); }

  /// FQDN -> domain id; nullptr when unknown.
  [[nodiscard]] const TrackerDomain* find_domain(const std::string& fqdn) const;

  /// Server lookup by IP; nullptr when the IP is not a server.
  [[nodiscard]] const Server* find_server(const net::IpAddress& ip) const;

  /// Ground-truth country of a server IP (via its datacenter); empty
  /// string when the IP is unknown. This is what a perfect geolocator
  /// would report and what validation harnesses compare against.
  [[nodiscard]] std::string true_country_of(const net::IpAddress& ip) const;

  /// All domain ids with at least one deployment on this server.
  [[nodiscard]] std::vector<DomainId> domains_on_server(ServerId id) const;

  /// Tracking domains only (everything except CleanService orgs).
  [[nodiscard]] std::vector<DomainId> tracking_domain_ids() const;

 private:
  WorldConfig config_;
  std::vector<CloudProvider> clouds_;
  std::vector<Datacenter> datacenters_;
  std::vector<Organization> orgs_;
  std::vector<TrackerDomain> domains_;
  std::vector<Server> servers_;
  std::vector<Publisher> publishers_;
  std::vector<ExtensionUser> users_;
  AddressPlan addresses_;

  std::unordered_map<std::string, DomainId> domain_by_fqdn_;
  std::unordered_map<net::IpAddress, ServerId> server_by_ip_;
  std::unordered_map<ServerId, std::vector<DomainId>> domains_by_server_;
};

/// Deterministically constructs a World from a config (same config ->
/// identical world, bit for bit).
[[nodiscard]] World build_world(const WorldConfig& config);

}  // namespace cbwt::world
