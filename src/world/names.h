// Deterministic name generation for synthetic organizations, domains and
// datacenters. Names are readable ("admetrix7.com", "syncpixel12.net") so
// reports and filter lists stay debuggable.
#pragma once

#include <string>

#include "util/prng.h"
#include "world/types.h"

namespace cbwt::world {

/// Generates a brand name for an organization of the given role, e.g.
/// ad networks get ad-flavoured stems, sync services sync-flavoured ones.
[[nodiscard]] std::string make_org_name(util::Rng& rng, OrgRole role, std::uint32_t index);

/// Picks a registrable-domain suffix for an org ("com", "net", "io", ...).
[[nodiscard]] std::string make_domain_suffix(util::Rng& rng);

/// Builds a subdomain label appropriate to a role ("sync", "cdn",
/// "pixel", "bid", ...). `index` disambiguates repeats.
[[nodiscard]] std::string make_host_label(util::Rng& rng, OrgRole role, std::uint32_t index);

/// Publisher site name, flavoured by its primary topic name.
[[nodiscard]] std::string make_publisher_domain(util::Rng& rng, std::string_view topic,
                                                std::uint32_t index,
                                                std::string_view country_code);

/// Datacenter site name such as "fra2-colo" or "ams1-cloudnine".
[[nodiscard]] std::string make_datacenter_name(std::string_view country_code,
                                               std::uint32_t index,
                                               std::string_view owner);

}  // namespace cbwt::world
