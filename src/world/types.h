// Entity types of the synthetic internet the study runs on: countries
// host datacenters (independent colos or cloud PoPs); tracker and
// content organizations deploy servers into datacenters under DNS
// policies; publishers embed their tags; user populations browse.
//
// The world replaces the paper's closed inputs (real users, the live ad
// ecosystem, ISP populations) while preserving the structural properties
// the measurement pipeline keys on — see DESIGN.md §2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/country.h"
#include "geo/location.h"
#include "net/ip.h"

namespace cbwt::world {

using DatacenterId = std::uint32_t;
using CloudId = std::uint32_t;
using OrgId = std::uint32_t;
using DomainId = std::uint32_t;
using ServerId = std::uint32_t;
using PublisherId = std::uint32_t;
using UserId = std::uint32_t;
using TopicId = std::uint16_t;

inline constexpr CloudId kNoCloud = ~CloudId{0};

/// A physical hosting site. `cloud` is kNoCloud for independent colos.
struct Datacenter {
  DatacenterId id = 0;
  std::string name;
  std::string country;  ///< ISO alpha-2
  geo::LatLon location;
  CloudId cloud = kNoCloud;
  net::IpPrefix prefix;  ///< server address block of this site
};

/// A public cloud provider with a published PoP footprint (the paper uses
/// the published footprints of nine major clouds for its what-if study).
struct CloudProvider {
  CloudId id = 0;
  std::string name;
  std::vector<DatacenterId> pops;
};

/// What a third-party organization does; drives list coverage, chaining
/// behaviour and URL shape.
enum class OrgRole : std::uint8_t {
  AdNetwork,   ///< entry point of the ad chain; well known, list-covered
  Dsp,         ///< RTB bidder, reached via chains; poorly list-covered
  SyncService, ///< cookie-sync endpoints; keyword-rich URLs
  Analytics,   ///< page analytics tags; list-covered
  CleanService ///< genuinely non-tracking third party (chat, comments, CDN)
};

[[nodiscard]] std::string_view to_string(OrgRole role) noexcept;

/// How an organization's authoritative DNS maps clients to its PoPs.
enum class DnsPolicy : std::uint8_t {
  NearestPop,   ///< latency-based geo-DNS (big players)
  HqOnly,       ///< every FQDN resolves to servers at the HQ deployment
  RandomPop,    ///< round-robin over all PoPs, location-blind
};

/// A third-party (tracking or clean) organization.
struct Organization {
  OrgId id = 0;
  std::string name;
  OrgRole role = OrgRole::AdNetwork;
  std::string hq_country;        ///< legal entity home; what commercial
                                 ///< geolocation databases report
  DnsPolicy dns_policy = DnsPolicy::NearestPop;
  CloudId cloud = kNoCloud;      ///< cloud the org leases from, if any
  double popularity = 0.0;       ///< relative request-volume weight
  std::vector<DomainId> domains;
  std::vector<ServerId> servers;
};

/// One FQDN owned by an organization.
struct TrackerDomain {
  DomainId id = 0;
  OrgId org = 0;
  std::string fqdn;              ///< e.g. "sync.adnexus-3.com"
  std::string registrable;       ///< e.g. "adnexus-3.com" (paper's "TLD")
  bool in_easylist = false;      ///< matched by the synthetic easylist
  bool in_easyprivacy = false;   ///< matched by the synthetic easyprivacy
  bool keyword_urls = false;     ///< emits usermatch/rtb/cookiesync-style args
  std::vector<ServerId> servers; ///< deployments answering for this FQDN
};

/// A server instance in a datacenter. `shared_exchange` marks the small
/// set of ad-exchange hosts that serve many domains (paper Fig. 5).
struct Server {
  ServerId id = 0;
  OrgId org = 0;
  DatacenterId datacenter = 0;
  net::IpAddress ip;
  bool shared_exchange = false;
};

/// A first-party website.
struct Publisher {
  PublisherId id = 0;
  std::string domain;
  std::string country;           ///< where its audience concentrates
  std::vector<TopicId> topics;   ///< content taxonomy labels
  double popularity = 0.0;       ///< zipf mass
  std::vector<DomainId> embedded_tags;  ///< third-party tags on the page
};

/// A recruited extension user (the paper's 350 CrowdFlower users).
struct ExtensionUser {
  UserId id = 0;
  std::string country;
  double activity = 1.0;          ///< relative number of page visits
  bool third_party_resolver = false;  ///< uses Google-DNS-style resolver
  std::vector<TopicId> interests;
};

}  // namespace cbwt::world
