#include "world/topics.h"

#include <array>

namespace cbwt::world {

namespace {

// Ordinary topics first; the 12 sensitive categories follow, each with
// the umbrella label an automatic tagger files it under.
constexpr std::array<Topic, 28> kTopics = {{
    {0, "news", false, "News"},
    {1, "sports", false, "Sports"},
    {2, "technology", false, "Computers & Electronics"},
    {3, "shopping", false, "Shopping"},
    {4, "travel", false, "Travel"},
    {5, "food", false, "Food & Drink"},
    {6, "games", false, "Games"},
    {7, "finance", false, "Finance"},
    {8, "auto", false, "Autos & Vehicles"},
    {9, "music", false, "Arts & Entertainment"},
    {10, "movies", false, "Arts & Entertainment"},
    {11, "education", false, "Jobs & Education"},
    {12, "realestate", false, "Real Estate"},
    {13, "fashion", false, "Beauty & Fitness"},
    {14, "pets", false, "Pets & Animals"},
    {15, "diy", false, "Home & Garden"},
    {16, "health", true, "Health"},
    {17, "gambling", true, "Games"},
    {18, "sexual orientation", true, "People & Society"},
    {19, "pregnancy", true, "Health"},
    {20, "politics", true, "News"},
    {21, "porn", true, "Men's Interests"},
    {22, "religion", true, "People & Society"},
    {23, "ethnicity", true, "People & Society"},
    {24, "guns", true, "Hobbies & Leisure"},
    {25, "alcohol", true, "Food & Drink"},
    {26, "cancer", true, "Health"},
    {27, "death", true, "People & Society"},
}};

constexpr std::array<TopicId, 12> kSensitiveIds = {16, 17, 18, 19, 20, 21,
                                                   22, 23, 24, 25, 26, 27};

}  // namespace

std::span<const Topic> all_topics() noexcept { return kTopics; }

const Topic* find_topic(std::string_view name) noexcept {
  for (const auto& topic : kTopics) {
    if (topic.name == name) return &topic;
  }
  return nullptr;
}

const Topic& topic_by_id(TopicId id) noexcept {
  return kTopics[id < kTopics.size() ? id : 0];
}

std::size_t sensitive_topic_count() noexcept { return kSensitiveIds.size(); }

std::span<const TopicId> sensitive_topic_ids() noexcept { return kSensitiveIds; }

}  // namespace cbwt::world
