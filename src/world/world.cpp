#include "world/world.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "world/names.h"
#include "world/topics.h"

namespace cbwt::world {

namespace {

using util::Rng;

// ---------------------------------------------------------------------
// Static calibration tables.
// ---------------------------------------------------------------------

/// Extension-user country mix (weights). Mirrors the paper's recruitment:
/// EU28-heavy (Spain, UK, Germany, ... ~52%), a South American cluster
/// (~25%), small tails elsewhere.
struct UserMixEntry {
  std::string_view country;
  double weight;
};
constexpr std::array<UserMixEntry, 30> kUserMix = {{
    // EU28 (183/350)
    {"ES", 55}, {"GB", 30}, {"DE", 25}, {"IT", 15}, {"GR", 12}, {"PL", 10},
    {"RO", 8},  {"DK", 6},  {"BE", 6},  {"HU", 6},  {"CY", 5},  {"BG", 5},
    // South America (86/350)
    {"BR", 60}, {"AR", 20}, {"CO", 6},
    // Rest of Europe (23/350)
    {"RU", 10}, {"CH", 8},  {"RS", 3},  {"MD", 2},
    // Africa (22/350)
    {"ZA", 8},  {"TN", 5},  {"EG", 5},  {"NG", 4},
    // Asia (20/350)
    {"JP", 5},  {"IN", 5},  {"SG", 4},  {"MY", 3},  {"TH", 3},
    // North America (16/350)
    {"US", 14}, {"CA", 2},
}};

/// Cloud-provider footprints: country sets chosen so the what-if study
/// has the paper's structure (clouds present in DK/GR/RO/HU/AT but not
/// in CY/MT; US + the European hosting magnets everywhere).
struct CloudSpec {
  std::string_view name;
  std::array<std::string_view, 14> countries;  // ""-padded
};
constexpr std::array<CloudSpec, 9> kClouds = {{
    {"nimbus", {"US", "DE", "IE", "NL", "GB", "FR", "SG", "JP", "AU", "BR", "IN", "SE", "ES", "IT"}},
    {"stratocloud", {"US", "DE", "NL", "GB", "FR", "IE", "SG", "JP", "KR", "CA", "IT", "PL", "", ""}},
    {"cumulonet", {"US", "DE", "NL", "GB", "FR", "FI", "BE", "AT", "DK", "CH", "SG", "HK", "BR", ""}},
    {"altostrat", {"US", "DE", "NL", "FR", "GB", "RO", "", "", "", "", "", "", "", ""}},
    {"cirrushost", {"US", "NL", "DE", "GR", "IT", "ES", "", "", "", "", "", "", "", ""}},
    {"vaporgrid", {"US", "DE", "GB", "SE", "NO", "FI", "DK", "", "", "", "", "", "", ""}},
    {"skyforge", {"US", "NL", "", "", "", "", "", "", "", "", "", "", "", ""}},
    {"cloudnine", {"US", "DE", "HU", "CZ", "AT", "", "", "", "", "", "", "", "", ""}},
    {"fogbank", {"US", "GB", "FR", "PT", "PL", "", "", "", "", "", "", "", "", ""}},
}};

/// Per-country weight for tracker PoP placement: hosting magnets attract
/// deployments super-linearly in their infrastructure density.
double placement_weight(const geo::Country& country, double bias) {
  return std::pow(std::max(country.infra_density, 0.0), bias);
}

geo::LatLon jitter(Rng& rng, const geo::LatLon& base, double degrees) {
  return {base.lat + rng.next_double_in(-degrees, degrees),
          base.lon + rng.next_double_in(-degrees, degrees)};
}

}  // namespace

namespace detail {

using util::Rng;

// ---------------------------------------------------------------------
// Build phases. Each phase only appends to the world and uses a forked
// RNG so later phases do not perturb earlier ones when knobs change.
// ---------------------------------------------------------------------

class Builder {
 public:
  Builder(World& world, const WorldConfig& config) : w_(world), config_(config) {}

  void run() {
    Rng root(config_.seed);
    auto rng_infra = root.fork(1);
    auto rng_orgs = root.fork(2);
    auto rng_pubs = root.fork(3);
    auto rng_users = root.fork(4);
    build_infrastructure(rng_infra);
    build_organizations(rng_orgs);
    build_exchanges(rng_orgs);
    build_publishers(rng_pubs);
    build_users(rng_users);
    build_indices();
  }

 private:
  void add_datacenter(Rng& rng, const geo::Country& country, CloudId cloud,
                      std::string_view owner) {
    Datacenter dc;
    dc.id = static_cast<DatacenterId>(w_.datacenters_.size());
    dc.country = std::string(country.code);
    dc.cloud = cloud;
    dc.location = jitter(rng, country.centroid, 0.6);
    dc.name = make_datacenter_name(country.code, dc.id, owner);
    dc.prefix = w_.addresses_.allocate_server_v4(22);
    w_.datacenters_.push_back(std::move(dc));
    if (cloud != kNoCloud) w_.clouds_[cloud].pops.push_back(w_.datacenters_.back().id);
  }

  void build_infrastructure(Rng& rng) {
    // Cloud PoPs first (paper: nine public clouds with published maps).
    const auto cloud_count =
        std::min<std::size_t>(config_.cloud_providers, kClouds.size());
    for (std::size_t i = 0; i < cloud_count; ++i) {
      CloudProvider provider;
      provider.id = static_cast<CloudId>(i);
      provider.name = std::string(kClouds[i].name);
      w_.clouds_.push_back(std::move(provider));
    }
    for (std::size_t i = 0; i < cloud_count; ++i) {
      for (const auto code : kClouds[i].countries) {
        if (code.empty()) continue;
        const geo::Country* country = geo::find_country(code);
        if (country == nullptr) throw std::logic_error("unknown cloud country");
        add_datacenter(rng, *country, static_cast<CloudId>(i), kClouds[i].name);
      }
    }
    // Eyeball (end-user access) space: one block per country, so the
    // geolocation emulators and the NetFlow generator can address it.
    for (const auto& country : geo::all_countries()) {
      (void)w_.addresses_.eyeball_block(std::string(country.code));
    }
    // Independent colos: density-driven, with the paper's floor that
    // every EU28 country has at least one datacenter.
    for (const auto& country : geo::all_countries()) {
      auto colos = static_cast<std::uint32_t>(
          std::lround(country.infra_density * config_.datacenters_per_density * 0.4));
      if (country.eu28 && colos == 0) colos = 1;
      for (std::uint32_t i = 0; i < colos; ++i) {
        add_datacenter(rng, country, kNoCloud, "colo");
      }
    }
  }

  /// Picks `count` deployment datacenters for an org, weighted towards
  /// hosting magnets, preferring distinct countries.
  [[nodiscard]] std::vector<DatacenterId> pick_pops(Rng& rng,
                                                    const std::vector<DatacenterId>& pool,
                                                    std::size_t count) const {
    std::vector<DatacenterId> chosen;
    std::vector<std::string> used_countries;
    std::vector<double> weights(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const auto& dc = w_.datacenters_[pool[i]];
      const geo::Country* country = geo::find_country(dc.country);
      weights[i] = country == nullptr ? 0.0 : placement_weight(*country, config_.placement_bias);
    }
    for (std::size_t n = 0; n < count && n < pool.size() * 2; ++n) {
      // Temporarily damp already-used countries to spread PoPs out.
      std::vector<double> adjusted = weights;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        const auto& dc = w_.datacenters_[pool[i]];
        if (std::find(used_countries.begin(), used_countries.end(), dc.country) !=
            used_countries.end()) {
          adjusted[i] *= 0.30;
        }
        if (std::find(chosen.begin(), chosen.end(), pool[i]) != chosen.end()) {
          adjusted[i] = 0.0;
        }
      }
      const std::size_t idx = util::sample_discrete(rng, adjusted);
      if (adjusted[idx] <= 0.0) break;
      chosen.push_back(pool[idx]);
      used_countries.emplace_back(w_.datacenters_[pool[idx]].country);
      if (chosen.size() >= count) break;
    }
    return chosen;
  }

  [[nodiscard]] std::vector<DatacenterId> pops_in_country(std::string_view code) const {
    std::vector<DatacenterId> out;
    for (const auto& dc : w_.datacenters_) {
      if (dc.country == code) out.push_back(dc.id);
    }
    return out;
  }

  ServerId add_server(Rng& rng, OrgId org, DatacenterId dc_id) {
    Server server;
    server.id = static_cast<ServerId>(w_.servers_.size());
    server.org = org;
    server.datacenter = dc_id;
    auto& cursor = server_cursor_[dc_id];
    ++cursor;
    if (rng.chance(config_.ipv6_share)) {
      // Give the v6 tail a distinct block derived from the DC prefix.
      server.ip = net::IpAddress::v6(0x2A01'0000'0000'0000ULL +
                                         (static_cast<std::uint64_t>(dc_id) << 16),
                                     cursor);
    } else {
      server.ip = w_.datacenters_[dc_id].prefix.at(cursor);
    }
    w_.servers_.push_back(server);
    w_.orgs_[org].servers.push_back(server.id);
    return server.id;
  }

  /// Creates the org's FQDNs and distributes them over its deployments.
  void add_domains(Rng& rng, Organization& org, std::size_t fqdn_count,
                   double list_coverage, double keyword_share) {
    const std::string registrable = org.name + "." + make_domain_suffix(rng);
    std::string second_registrable;
    if (org.role == OrgRole::AdNetwork && rng.chance(0.25)) {
      // Some ad networks run a sibling brand (doubleclick-style).
      second_registrable = org.name + "-media." + make_domain_suffix(rng);
    }
    for (std::uint32_t i = 0; i < fqdn_count; ++i) {
      TrackerDomain domain;
      domain.id = static_cast<DomainId>(w_.domains_.size());
      domain.org = org.id;
      domain.registrable = (!second_registrable.empty() && i + 1 == fqdn_count)
                               ? second_registrable
                               : registrable;
      domain.fqdn = make_host_label(rng, org.role, i) + "." + domain.registrable;
      const bool listed = rng.chance(list_coverage);
      if (org.role == OrgRole::Analytics) {
        domain.in_easyprivacy = listed;
      } else if (org.role != OrgRole::CleanService) {
        domain.in_easylist = listed;
      }
      domain.keyword_urls = rng.chance(keyword_share);
      // Deployment per FQDN: entry-layer (ad network / analytics) primary
      // FQDNs answer from every org deployment; chained-layer primaries
      // answer from ~70% of them, secondary FQDNs from random subsets.
      // Per-FQDN partial deployment is why TLD-level DNS redirection has
      // more alternatives than FQDN-level redirection (Table 5), and a
      // home-country server is always kept when one exists (local
      // operators serve their home market from every brand).
      const bool entry_role =
          org.role == OrgRole::AdNetwork || org.role == OrgRole::Analytics;
      if (org.servers.size() <= 1 || (i == 0 && entry_role)) {
        domain.servers = org.servers;
      } else {
        std::size_t take;
        if (i == 0) {
          take = std::max<std::size_t>(
              1, static_cast<std::size_t>(
                     std::lround(0.7 * static_cast<double>(org.servers.size()))));
        } else {
          take = 1 + static_cast<std::size_t>(rng.next_below(org.servers.size()));
        }
        std::vector<ServerId> pool = org.servers;
        rng.shuffle(std::span<ServerId>(pool));
        pool.resize(take);
        // Keep a home-market server reachable under this FQDN if the org
        // has one at all.
        const auto at_home = [&](ServerId sid) {
          return w_.datacenters_[w_.servers_[sid].datacenter].country ==
                 org.hq_country;
        };
        const bool subset_has_home = std::any_of(pool.begin(), pool.end(), at_home);
        if (!subset_has_home) {
          const auto home_it =
              std::find_if(org.servers.begin(), org.servers.end(), at_home);
          if (home_it != org.servers.end()) pool.push_back(*home_it);
        }
        domain.servers = std::move(pool);
      }
      org.domains.push_back(domain.id);
      w_.domains_.push_back(std::move(domain));
    }
  }

  void make_orgs_for_role(Rng& rng, OrgRole role, std::uint32_t count, double zipf_s) {
    const util::ZipfSampler zipf(count, zipf_s);
    for (std::uint32_t i = 0; i < count; ++i) {
      Organization org;
      org.id = static_cast<OrgId>(w_.orgs_.size());
      org.role = role;
      org.name = make_org_name(rng, role, org.id);
      org.popularity = zipf.mass(i);

      // The market leaders all run European PoPs (the paper's Googles and
      // Facebooks); US-only deployments live in the mid/long tail.
      const bool top_quartile = i < count / 4;
      // The chained ad-tech layer (bidders, cookie-sync brokers) is more
      // US-centric than the entry layer, which drives the residual
      // N.America leakage of EU flows.
      double us_only_chance =
          (role == OrgRole::Dsp || role == OrgRole::SyncService)
              ? config_.us_only_org_share * 1.9
              : config_.us_only_org_share;
      // Even some market-leading bidders/sync brokers served Europe from
      // US-only deployments in 2017/18; the entry layer's leaders did not.
      if (top_quartile) {
        us_only_chance = (role == OrgRole::Dsp || role == OrgRole::SyncService)
                             ? 0.30
                             : 0.0;
      }
      const bool us_only =
          role != OrgRole::CleanService && rng.chance(us_only_chance);
      if (us_only) {
        org.hq_country = "US";
      } else if (top_quartile && rng.chance(0.72)) {
        // The giants of the ecosystem are overwhelmingly US legal
        // entities even where their servers are European (Table 4).
        org.hq_country = "US";
      } else {
        // Legal homes: US-heavy at the top of the market, then the large
        // EU countries (local ad markets), then a CH/RU/Asia tail.
        const double roll = rng.next_double();
        if (roll < 0.48) org.hq_country = "US";
        else if (roll < 0.57) org.hq_country = "DE";
        else if (roll < 0.65) org.hq_country = "GB";
        else if (roll < 0.72) org.hq_country = "FR";
        else if (roll < 0.78) org.hq_country = "NL";
        else if (roll < 0.84) org.hq_country = "ES";
        else if (roll < 0.88) org.hq_country = "IT";
        else if (roll < 0.91) org.hq_country = "PL";
        else if (roll < 0.95) org.hq_country = "CH";
        else if (roll < 0.98) org.hq_country = "RU";
        else org.hq_country = "JP";
      }

      // The market leaders run latency-optimizing geo-DNS; the tails mix
      // in HQ-pinned and location-blind setups.
      if (top_quartile) {
        org.dns_policy = DnsPolicy::NearestPop;
      } else if (rng.chance(config_.location_blind_share)) {
        org.dns_policy = DnsPolicy::RandomPop;
      } else if (rng.chance(0.07)) {
        org.dns_policy = DnsPolicy::HqOnly;
      } else {
        org.dns_policy = DnsPolicy::NearestPop;
      }

      // Half the market leases from a public cloud, preferring the large
      // footprints.
      if (rng.chance(0.5)) {
        std::vector<double> cloud_weights;
        cloud_weights.reserve(w_.clouds_.size());
        for (const auto& cloud : w_.clouds_) {
          cloud_weights.push_back(static_cast<double>(cloud.pops.size()));
        }
        org.cloud = static_cast<CloudId>(util::sample_discrete(rng, cloud_weights));
      }

      w_.orgs_.push_back(org);
      Organization& stored = w_.orgs_.back();

      // Deployment size scales with within-role rank.
      const double rank_frac =
          1.0 - static_cast<double>(i) / std::max<double>(1.0, count - 1);
      std::size_t max_pops = 1;
      switch (role) {
        case OrgRole::AdNetwork: max_pops = 20; break;
        case OrgRole::Analytics: max_pops = 12; break;
        case OrgRole::Dsp: max_pops = 12; break;
        case OrgRole::SyncService: max_pops = 12; break;
        case OrgRole::CleanService: max_pops = 6; break;
      }
      std::size_t n_pops = 1 + static_cast<std::size_t>(std::lround(
                                   std::pow(rank_frac, 1.1) * static_cast<double>(max_pops - 1)));

      std::vector<DatacenterId> pool;
      if (us_only) {
        pool = pops_in_country("US");
        n_pops = std::min<std::size_t>(n_pops, 3);
      } else if (stored.dns_policy == DnsPolicy::HqOnly) {
        pool = pops_in_country(stored.hq_country);
        n_pops = std::min<std::size_t>(n_pops, 2);
        if (pool.empty()) pool = all_pops();
      } else if (stored.cloud != kNoCloud) {
        pool = w_.clouds_[stored.cloud].pops;
      } else {
        pool = colo_pops();
      }
      if (pool.empty()) pool = all_pops();

      auto deployment = pick_pops(rng, pool, n_pops);
      // Companies host at home when they can: ensure a PoP in the HQ
      // country (drawn from the org's own candidate pool) unless the org
      // is deliberately US-only.
      if (!us_only) {
        const bool has_home = std::any_of(
            deployment.begin(), deployment.end(), [&](DatacenterId dc) {
              return w_.datacenters_[dc].country == stored.hq_country;
            });
        if (!has_home) {
          for (const DatacenterId dc : pool) {
            if (w_.datacenters_[dc].country == stored.hq_country) {
              deployment.push_back(dc);
              break;
            }
          }
        }
      }
      for (const DatacenterId dc : deployment) {
        const std::size_t replicas = rank_frac > 0.9 ? 2 : 1;
        for (std::size_t r = 0; r < replicas; ++r) add_server(rng, stored.id, dc);
      }
      if (stored.servers.empty()) {
        // Safety net: every org must answer from somewhere.
        add_server(rng, stored.id, static_cast<DatacenterId>(rng.next_below(
                                       w_.datacenters_.size())));
      }

      std::size_t fqdns = 1;
      double list_coverage = 0.0;
      double keyword_share = 0.0;
      switch (role) {
        case OrgRole::AdNetwork:
          fqdns = 2 + static_cast<std::size_t>(rng.next_below(4));
          list_coverage = 0.95;
          keyword_share = 0.30;
          break;
        case OrgRole::Analytics:
          fqdns = 1 + static_cast<std::size_t>(rng.next_below(2));
          list_coverage = 0.90;
          keyword_share = 0.10;
          break;
        case OrgRole::Dsp:
          fqdns = 1 + static_cast<std::size_t>(rng.next_below(3));
          list_coverage = 0.38;
          keyword_share = 0.70;
          break;
        case OrgRole::SyncService:
          fqdns = 1 + static_cast<std::size_t>(rng.next_below(2));
          list_coverage = 0.28;
          keyword_share = 1.0;
          break;
        case OrgRole::CleanService:
          fqdns = 1 + static_cast<std::size_t>(rng.next_below(2));
          list_coverage = 0.0;
          keyword_share = 0.0;
          break;
      }
      add_domains(rng, stored, fqdns, list_coverage, keyword_share);
    }
  }

  void build_organizations(Rng& rng) {
    make_orgs_for_role(rng, OrgRole::AdNetwork, config_.ad_networks, config_.org_zipf);
    make_orgs_for_role(rng, OrgRole::Analytics, config_.analytics_orgs, config_.org_zipf);
    make_orgs_for_role(rng, OrgRole::Dsp, config_.dsps, config_.org_zipf);
    make_orgs_for_role(rng, OrgRole::SyncService, config_.sync_services, config_.org_zipf);
    make_orgs_for_role(rng, OrgRole::CleanService, config_.clean_orgs, config_.org_zipf);
  }

  /// A handful of ad-exchange hosts serve many tracking domains each
  /// (paper Fig. 5: 114 such IPs, about half in the US and EU28).
  void build_exchanges(Rng& rng) {
    const std::size_t exchange_count = 12;
    static constexpr std::array<std::string_view, 4> kExchangeHomes = {"US", "DE", "NL",
                                                                       "GB"};
    // Sync/DSP domains are the natural tenants of shared exchange hosts.
    std::vector<DomainId> tenants;
    for (const auto& domain : w_.domains_) {
      const auto role = w_.orgs_[domain.org].role;
      if (role == OrgRole::SyncService || role == OrgRole::Dsp) tenants.push_back(domain.id);
    }
    for (std::size_t i = 0; i < exchange_count && !tenants.empty(); ++i) {
      const auto home = kExchangeHomes[i % kExchangeHomes.size()];
      const auto pool = pops_in_country(home);
      if (pool.empty()) continue;
      const auto dc = pool[static_cast<std::size_t>(rng.next_below(pool.size()))];
      // House the exchange under the busiest sync org for attribution.
      const DomainId seed_domain =
          tenants[static_cast<std::size_t>(rng.next_below(tenants.size()))];
      const OrgId owner = w_.domains_[seed_domain].org;
      const ServerId sid = add_server(rng, owner, dc);
      w_.servers_[sid].shared_exchange = true;
      const std::size_t guest_count = 10 + static_cast<std::size_t>(rng.next_below(31));
      for (std::size_t g = 0; g < guest_count; ++g) {
        const DomainId guest =
            tenants[static_cast<std::size_t>(rng.next_below(tenants.size()))];
        auto& servers = w_.domains_[guest].servers;
        if (std::find(servers.begin(), servers.end(), sid) == servers.end()) {
          servers.push_back(sid);
        }
      }
    }
  }

  void build_publishers(Rng& rng) {
    const auto topics = all_topics();
    std::vector<TopicId> ordinary;
    for (const auto& topic : topics) {
      if (!topic.sensitive) ordinary.push_back(topic.id);
    }
    const auto sensitive = sensitive_topic_ids();

    const std::uint32_t total = config_.publishers;
    const auto sensitive_count = static_cast<std::uint32_t>(
        std::lround(total * config_.sensitive_publisher_fraction));

    // Popularity ranks: sensitive sites are pushed into the bottom 30% of
    // the popularity order so their share of tracking volume lands near
    // the paper's ~3% despite being ~19% of domains. rank_of[i] is the
    // zipf rank of publisher i; sensitive publishers (ids < sensitive_count)
    // draw shuffled tail ranks, everyone else takes the rest in order.
    const util::ZipfSampler zipf(total, config_.publisher_zipf);
    const std::uint32_t tail_start = total - total * 3 / 10;
    std::vector<std::uint32_t> tail_ranks;
    for (std::uint32_t r = tail_start; r < total; ++r) tail_ranks.push_back(r);
    rng.shuffle(std::span<std::uint32_t>(tail_ranks));
    std::vector<std::uint32_t> rank_of(total, 0);
    for (std::uint32_t i = 0; i < sensitive_count && i < tail_ranks.size(); ++i) {
      rank_of[i] = tail_ranks[i];
    }
    {
      std::vector<std::uint32_t> rest(tail_ranks.begin() + sensitive_count,
                                      tail_ranks.end());
      for (std::uint32_t r = 0; r < tail_start; ++r) rest.push_back(r);
      std::sort(rest.begin(), rest.end());
      for (std::uint32_t i = sensitive_count; i < total; ++i) {
        rank_of[i] = rest[i - sensitive_count];
      }
    }

    // Relative weights of the sensitive categories (paper Fig. 9):
    // health 38%, gambling 22%, sexual orientation 11%, pregnancy 11%,
    // politics 9%, porn 7%, then small tails.
    const std::array<double, 12> sensitive_weights = {38, 22, 11, 11, 9, 7,
                                                      2.5, 2, 1.5, 1.5, 1.2, 0.8};

    // Entry tags are ad networks / analytics / clean orgs, sampled by
    // popularity.
    std::vector<OrgId> ad_orgs;
    std::vector<double> ad_weights;
    std::vector<OrgId> analytics_orgs;
    std::vector<double> analytics_weights;
    std::vector<OrgId> clean_orgs;
    std::vector<double> clean_weights;
    for (const auto& org : w_.orgs_) {
      switch (org.role) {
        case OrgRole::AdNetwork:
          ad_orgs.push_back(org.id);
          ad_weights.push_back(org.popularity);
          break;
        case OrgRole::Analytics:
          analytics_orgs.push_back(org.id);
          analytics_weights.push_back(org.popularity);
          break;
        case OrgRole::CleanService:
          clean_orgs.push_back(org.id);
          clean_weights.push_back(org.popularity);
          break;
        default: break;
      }
    }

    for (std::uint32_t i = 0; i < total; ++i) {
      Publisher pub;
      pub.id = i;
      const bool is_sensitive = i < sensitive_count;
      pub.popularity = zipf.mass(rank_of[i]);

      // Audience country follows the user mix so extension users find
      // local and global sites alike.
      const std::size_t mix_idx = util::sample_discrete(rng, user_mix_weights());
      pub.country = std::string(kUserMix[mix_idx].country);

      if (is_sensitive) {
        const std::size_t cat = util::sample_discrete(rng, sensitive_weights);
        pub.topics.push_back(sensitive[cat]);
        if (rng.chance(0.5)) {
          pub.topics.push_back(ordinary[static_cast<std::size_t>(
              rng.next_below(ordinary.size()))]);
        }
      } else {
        const std::size_t n_topics = 1 + static_cast<std::size_t>(rng.next_below(3));
        for (std::size_t t = 0; t < n_topics; ++t) {
          pub.topics.push_back(ordinary[static_cast<std::size_t>(
              rng.next_below(ordinary.size()))]);
        }
      }
      pub.domain = make_publisher_domain(
          rng, topic_by_id(pub.topics.front()).name, i, pub.country);

      // Local ad markets are real: a publisher prefers networks whose
      // legal home is its own country.
      std::vector<double> local_ad_weights = ad_weights;
      for (std::size_t a = 0; a < ad_orgs.size(); ++a) {
        if (w_.orgs_[ad_orgs[a]].hq_country == pub.country) local_ad_weights[a] *= 6.0;
      }
      const std::size_t n_ads = 2 + static_cast<std::size_t>(rng.next_below(5));
      for (std::size_t t = 0; t < n_ads; ++t) {
        const OrgId org = ad_orgs[util::sample_discrete(rng, local_ad_weights)];
        pub.embedded_tags.push_back(w_.orgs_[org].domains.front());
      }
      const std::size_t n_analytics = 1 + static_cast<std::size_t>(rng.next_below(2));
      for (std::size_t t = 0; t < n_analytics; ++t) {
        const OrgId org = analytics_orgs[util::sample_discrete(rng, analytics_weights)];
        pub.embedded_tags.push_back(w_.orgs_[org].domains.front());
      }
      const std::size_t n_clean = 1 + static_cast<std::size_t>(rng.next_below(5));
      for (std::size_t t = 0; t < n_clean; ++t) {
        const OrgId org = clean_orgs[util::sample_discrete(rng, clean_weights)];
        pub.embedded_tags.push_back(w_.orgs_[org].domains.front());
      }
      w_.publishers_.push_back(std::move(pub));
    }
  }

  [[nodiscard]] static std::vector<double> user_mix_weights() {
    std::vector<double> weights;
    weights.reserve(kUserMix.size());
    for (const auto& entry : kUserMix) weights.push_back(entry.weight);
    return weights;
  }

  void build_users(Rng& rng) {
    // Largest-remainder apportionment of extension_users over the mix.
    double total_weight = 0.0;
    for (const auto& entry : kUserMix) total_weight += entry.weight;
    std::vector<std::uint32_t> counts(kUserMix.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::uint32_t assigned = 0;
    for (std::size_t i = 0; i < kUserMix.size(); ++i) {
      const double exact = config_.extension_users * kUserMix[i].weight / total_weight;
      counts[i] = static_cast<std::uint32_t>(exact);
      assigned += counts[i];
      remainders.emplace_back(exact - counts[i], i);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t i = 0; assigned < config_.extension_users && i < remainders.size();
         ++i, ++assigned) {
      ++counts[remainders[i].second];
    }

    const auto topics = all_topics();
    for (std::size_t i = 0; i < kUserMix.size(); ++i) {
      for (std::uint32_t n = 0; n < counts[i]; ++n) {
        ExtensionUser user;
        user.id = static_cast<UserId>(w_.users_.size());
        user.country = std::string(kUserMix[i].country);
        user.activity = std::exp(rng.next_normal(0.0, 0.8));
        user.third_party_resolver = rng.chance(config_.third_party_resolver_share);
        const std::size_t n_interests = 2 + static_cast<std::size_t>(rng.next_below(4));
        for (std::size_t t = 0; t < n_interests; ++t) {
          user.interests.push_back(
              topics[static_cast<std::size_t>(rng.next_below(topics.size()))].id);
        }
        w_.users_.push_back(std::move(user));
      }
    }
  }

  void build_indices() {
    for (const auto& domain : w_.domains_) {
      w_.domain_by_fqdn_.emplace(domain.fqdn, domain.id);
      for (const ServerId sid : domain.servers) {
        w_.domains_by_server_[sid].push_back(domain.id);
      }
    }
    for (const auto& server : w_.servers_) {
      w_.server_by_ip_.emplace(server.ip, server.id);
    }
  }

  [[nodiscard]] std::vector<DatacenterId> all_pops() const {
    std::vector<DatacenterId> out(w_.datacenters_.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<DatacenterId>(i);
    return out;
  }

  [[nodiscard]] std::vector<DatacenterId> colo_pops() const {
    std::vector<DatacenterId> out;
    for (const auto& dc : w_.datacenters_) {
      if (dc.cloud == kNoCloud) out.push_back(dc.id);
    }
    return out;
  }

  World& w_;
  const WorldConfig& config_;
  std::unordered_map<DatacenterId, std::uint64_t> server_cursor_;
};

}  // namespace

std::string_view to_string(OrgRole role) noexcept {
  switch (role) {
    case OrgRole::AdNetwork: return "ad-network";
    case OrgRole::Dsp: return "dsp";
    case OrgRole::SyncService: return "sync-service";
    case OrgRole::Analytics: return "analytics";
    case OrgRole::CleanService: return "clean-service";
  }
  return "?";
}

const TrackerDomain* World::find_domain(const std::string& fqdn) const {
  const auto it = domain_by_fqdn_.find(fqdn);
  return it == domain_by_fqdn_.end() ? nullptr : &domains_[it->second];
}

const Server* World::find_server(const net::IpAddress& ip) const {
  const auto it = server_by_ip_.find(ip);
  return it == server_by_ip_.end() ? nullptr : &servers_[it->second];
}

std::string World::true_country_of(const net::IpAddress& ip) const {
  const Server* server = find_server(ip);
  if (server == nullptr) return {};
  return datacenters_[server->datacenter].country;
}

std::vector<DomainId> World::domains_on_server(ServerId id) const {
  const auto it = domains_by_server_.find(id);
  return it == domains_by_server_.end() ? std::vector<DomainId>{} : it->second;
}

std::vector<DomainId> World::tracking_domain_ids() const {
  std::vector<DomainId> out;
  for (const auto& domain : domains_) {
    if (orgs_[domain.org].role != OrgRole::CleanService) out.push_back(domain.id);
  }
  return out;
}

World build_world(const WorldConfig& config) {
  World world;
  world.config_ = config;
  detail::Builder builder(world, world.config_);
  builder.run();
  return world;
}

}  // namespace cbwt::world
