// Tunable knobs of the synthetic world. Defaults are calibrated so the
// pipeline reproduces the *shape* of the paper's results at a scale a
// laptop runs in seconds; `scale` multiplies dataset volume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbwt::world {

struct WorldConfig {
  std::uint64_t seed = 20180901;  ///< master seed; everything derives from it

  /// Volume multiplier relative to the paper's dataset (1.0 would target
  /// the full 7.17M third-party requests of Table 1).
  double scale = 0.10;

  // --- population ----------------------------------------------------
  /// Recruited extension users. Their country mix follows an embedded
  /// weight table approximating the paper's: a large EU28 base
  /// (~183 of 350, Spain/UK/Germany-heavy), a South American cluster,
  /// and small tails in the other regions (see kUserMix in world.cpp).
  std::uint32_t extension_users = 350;

  // --- web ecosystem ---------------------------------------------------
  std::uint32_t publishers = 5693;        ///< first-party domains (Table 1)
  std::uint32_t ad_networks = 90;
  std::uint32_t dsps = 140;
  std::uint32_t sync_services = 60;
  std::uint32_t analytics_orgs = 70;
  std::uint32_t clean_orgs = 120;          ///< chat/comments/CDN services
  double publisher_zipf = 0.95;            ///< popularity skew of sites
  double org_zipf = 1.05;                  ///< popularity skew of trackers

  /// Fraction of publisher domains carrying a sensitive topic
  /// (paper: 1,067 of 5,693 inspected -> 18.7%), and the share of
  /// tracking flow volume they attract (paper: ~2.9%); sensitive sites
  /// sit in the popularity tail, which the builder enforces.
  double sensitive_publisher_fraction = 0.187;

  // --- infrastructure --------------------------------------------------
  std::uint32_t cloud_providers = 9;       ///< paper studies nine clouds
  double datacenters_per_density = 0.55;   ///< colo sites per density point
  /// Exponent biasing tracker PoP placement towards hosting magnets;
  /// higher values concentrate deployments in NL/DE/IE/GB/FR/US.
  double placement_bias = 1.0;

  /// Share of tracking organizations that are US-based with
  /// US-only deployments (the "leaking" share of EU flows).
  double us_only_org_share = 0.24;
  /// Share of orgs whose DNS ignores client location entirely.
  double location_blind_share = 0.06;
  /// Fraction of IPv6 deployments (paper: ~3% of tracker IPs are v6).
  double ipv6_share = 0.03;

  // --- browsing behaviour ----------------------------------------------
  double mean_visits_per_user = 0.0;       ///< derived from scale when 0
  double third_party_resolver_share = 0.30;  ///< broadband users on 8.8.8.8 etc.

  /// Returns visits per user honoring `scale` (Table 1: 76,507 visits
  /// over 350 users -> ~219 visits/user at scale 1).
  [[nodiscard]] double visits_per_user() const noexcept {
    if (mean_visits_per_user > 0.0) return mean_visits_per_user;
    return 218.6 * scale;
  }
};

}  // namespace cbwt::world
