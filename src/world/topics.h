// Content-topic taxonomy for publishers. Mirrors the paper's setup: an
// AdWords-style tagger assigns broad interest topics; twelve GDPR-
// sensitive categories exist underneath them (e.g. "pregnancy" hides
// inside "Health", "porn" inside "Men's Interests"), which is why the
// paper needed manual review on top of automatic tagging.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "world/types.h"

namespace cbwt::world {

/// A topic label. Sensitive topics carry the umbrella topic an automatic
/// tagger would (mis)file them under.
struct Topic {
  TopicId id = 0;
  std::string_view name;         ///< e.g. "health", "gambling", "news"
  bool sensitive = false;        ///< one of the paper's 12 GDPR categories
  std::string_view umbrella;     ///< AdWords-style broad label
};

/// Full taxonomy: ordinary interest topics first, then the 12 sensitive
/// categories of the paper (health, gambling, sexual orientation,
/// pregnancy, politics, porn, religion, ethnicity, guns, alcohol,
/// cancer, death).
[[nodiscard]] std::span<const Topic> all_topics() noexcept;

[[nodiscard]] const Topic* find_topic(std::string_view name) noexcept;
[[nodiscard]] const Topic& topic_by_id(TopicId id) noexcept;

/// Number of sensitive categories (12).
[[nodiscard]] std::size_t sensitive_topic_count() noexcept;

/// Ids of the sensitive topics, in taxonomy order.
[[nodiscard]] std::span<const TopicId> sensitive_topic_ids() noexcept;

}  // namespace cbwt::world
