#include "world/address_plan.h"

#include <stdexcept>

namespace cbwt::world {

net::IpPrefix AddressPlan::allocate_server_v4(unsigned length) {
  if (length == 0 || length > 24) throw std::invalid_argument("server v4 length must be 1..24");
  const std::uint32_t block = std::uint32_t{1} << (32U - length);
  // Align the cursor to the block size, then take the block.
  const std::uint32_t aligned = (next_server_v4_ + block - 1) / block * block;
  next_server_v4_ = aligned + block;
  return net::IpPrefix{net::IpAddress::v4(aligned), length};
}

net::IpPrefix AddressPlan::allocate_server_v6(unsigned length) {
  if (length == 0 || length > 64) throw std::invalid_argument("server v6 length must be 1..64");
  const auto base = net::IpAddress::v6(next_server_v6_hi_, 0);
  next_server_v6_hi_ += 0x0000'0001'0000'0000ULL;  // stride of /32 blocks
  return net::IpPrefix{base, length};
}

net::IpPrefix AddressPlan::eyeball_block(const std::string& country) {
  const auto it = eyeballs_.find(country);
  if (it != eyeballs_.end()) return it->second;
  constexpr std::uint32_t kBlock = std::uint32_t{1} << 20;  // /12
  const net::IpPrefix prefix{net::IpAddress::v4(next_eyeball_), 12};
  next_eyeball_ += kBlock;
  eyeballs_.emplace(country, prefix);
  return prefix;
}

bool AddressPlan::is_eyeball(const net::IpAddress& ip) const noexcept {
  for (const auto& [country, prefix] : eyeballs_) {
    if (prefix.contains(ip)) return true;
  }
  return false;
}

}  // namespace cbwt::world
