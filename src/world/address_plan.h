// Deterministic IP address allocation for the synthetic internet:
// sequential, non-overlapping prefixes for datacenter server blocks and
// per-country eyeball (end-user access) blocks.
#pragma once

#include <map>
#include <string>

#include "net/ip.h"

namespace cbwt::world {

/// Hands out non-overlapping prefixes. Server space grows upward from
/// 11.0.0.0 (v4) / 2a01::/32-steps (v6); eyeball space from 89.0.0.0.
/// The split mirrors reality enough for the geolocation emulators to
/// treat the two spaces differently.
class AddressPlan {
 public:
  AddressPlan() = default;

  /// Next free IPv4 server prefix of the given length (<= 24).
  [[nodiscard]] net::IpPrefix allocate_server_v4(unsigned length);

  /// Next free IPv6 server prefix (length <= 64).
  [[nodiscard]] net::IpPrefix allocate_server_v6(unsigned length);

  /// The (memoized) eyeball /12 of a country; allocated on first use.
  [[nodiscard]] net::IpPrefix eyeball_block(const std::string& country);

  /// True when `ip` falls inside any allocated eyeball block.
  [[nodiscard]] bool is_eyeball(const net::IpAddress& ip) const noexcept;

  [[nodiscard]] const std::map<std::string, net::IpPrefix>& eyeball_blocks() const noexcept {
    return eyeballs_;
  }

 private:
  std::uint32_t next_server_v4_ = 0x0B00'0000;  // 11.0.0.0
  std::uint64_t next_server_v6_hi_ = 0x2A01'0000'0000'0000ULL;
  std::uint32_t next_eyeball_ = 0x5900'0000;    // 89.0.0.0
  std::map<std::string, net::IpPrefix> eyeballs_;
};

}  // namespace cbwt::world
