// "What-if" localization study (§5): how much tracking-flow confinement
// improves if tracker operators redirect DNS to alternative servers they
// already run (FQDN- or TLD-level), mirror PoPs across their cloud's
// footprint, or migrate to any public-cloud PoP. The study only uses
// alternatives *observed in the dataset* (for redirection) and the
// clouds' *published* footprints (for mirroring/migration), exactly as
// the paper does.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/flows.h"
#include "browser/extension.h"
#include "classify/classifier.h"
#include "geoloc/service.h"

namespace cbwt::whatif {

enum class Scenario : std::uint8_t {
  Default,                   ///< what DNS actually did
  RedirectFqdn,              ///< redirect to any observed server of the same FQDN
  RedirectTld,               ///< ... of the same registrable domain
  PopMirroring,              ///< replicate onto the org's cloud footprint
  RedirectTldPlusMirroring,  ///< both of the above
  CloudMigration,            ///< move to any PoP of any of the nine clouds
};

[[nodiscard]] std::string_view to_string(Scenario scenario) noexcept;

/// Confinement of a scenario over the loaded flow set.
struct LocalizationResult {
  std::uint64_t total = 0;
  double in_country_pct = 0.0;
  double in_continent_pct = 0.0;
};

/// The per-flow and per-domain state the scenarios are evaluated on.
class LocalizationStudy {
 public:
  LocalizationStudy(const world::World& world, const geoloc::GeoService& service,
                    geoloc::Tool tool);

  /// Loads the classified tracking flows of EU28 users (Table 5 scope).
  void load(const browser::ExtensionDataset& dataset,
            const std::vector<classify::Outcome>& outcomes);

  [[nodiscard]] LocalizationResult evaluate(Scenario scenario) const;

  /// Per-origin-country in-country confinement under a scenario.
  [[nodiscard]] std::map<std::string, LocalizationResult> evaluate_per_country(
      Scenario scenario) const;

  /// Improvement (percentage points of in-country confinement) of
  /// `scenario` over `baseline`, per origin country (Table 6 columns).
  [[nodiscard]] std::map<std::string, double> improvement_per_country(
      Scenario baseline, Scenario scenario) const;

  [[nodiscard]] std::size_t flow_count() const noexcept { return flows_.size(); }

 private:
  struct StudyFlow {
    std::string origin;
    std::string origin_continent;
    std::string default_destination;
    std::string default_destination_continent;
    world::DomainId domain = 0;
  };

  [[nodiscard]] bool scenario_confines_to_country(const StudyFlow& flow,
                                                  Scenario scenario) const;
  [[nodiscard]] bool scenario_confines_to_continent(const StudyFlow& flow,
                                                    Scenario scenario) const;
  /// Candidate destination countries a scenario may redirect a flow to.
  [[nodiscard]] const std::set<std::string>* alternatives(const StudyFlow& flow,
                                                          Scenario scenario) const;

  const world::World* world_;
  const geoloc::GeoService* service_;
  geoloc::Tool tool_;

  std::vector<StudyFlow> flows_;
  /// Observed destination countries per FQDN / per registrable domain.
  std::map<std::string, std::set<std::string>> countries_by_fqdn_;
  std::map<std::string, std::set<std::string>> countries_by_registrable_;
  /// Published cloud footprints.
  std::map<world::CloudId, std::set<std::string>> cloud_countries_;
  std::set<std::string> all_cloud_countries_;
};

}  // namespace cbwt::whatif
