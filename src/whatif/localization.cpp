#include "whatif/localization.h"

#include "geo/country.h"

namespace cbwt::whatif {

namespace {

std::string continent_of(const std::string& country_code) {
  const geo::Country* country = geo::find_country(country_code);
  return country == nullptr ? std::string{} : std::string(geo::to_string(country->continent));
}

bool set_has_continent(const std::set<std::string>& countries, const std::string& continent) {
  for (const auto& code : countries) {
    if (continent_of(code) == continent) return true;
  }
  return false;
}

}  // namespace

std::string_view to_string(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::Default: return "Default";
    case Scenario::RedirectFqdn: return "Redirections (FQDN)";
    case Scenario::RedirectTld: return "Redirections (TLD)";
    case Scenario::PopMirroring: return "POP Mirroring (Cloud)";
    case Scenario::RedirectTldPlusMirroring: return "Redirection (TLD) + POP Mirroring";
    case Scenario::CloudMigration: return "Migration to Cloud";
  }
  return "?";
}

LocalizationStudy::LocalizationStudy(const world::World& world,
                                     const geoloc::GeoService& service, geoloc::Tool tool)
    : world_(&world), service_(&service), tool_(tool) {
  // Published cloud footprints (country level, as the providers advertise).
  for (const auto& cloud : world.clouds()) {
    auto& countries = cloud_countries_[cloud.id];
    for (const auto pop : cloud.pops) {
      countries.insert(world.datacenter(pop).country);
      all_cloud_countries_.insert(world.datacenter(pop).country);
    }
  }
}

void LocalizationStudy::load(const browser::ExtensionDataset& dataset,
                             const std::vector<classify::Outcome>& outcomes) {
  flows_.clear();
  countries_by_fqdn_.clear();
  countries_by_registrable_.clear();

  for (std::size_t i = 0; i < dataset.requests.size(); ++i) {
    if (!classify::is_tracking(outcomes[i].method)) continue;
    const auto& request = dataset.requests[i];
    const auto& user = world_->users().at(request.user);
    const geo::Country* origin = geo::find_country(user.country);
    if (origin == nullptr || !origin->eu28) continue;  // Table 5 scope: EU28 users

    StudyFlow flow;
    flow.origin = user.country;
    flow.origin_continent = std::string(geo::to_string(origin->continent));
    flow.default_destination = service_->locate(request.server_ip, tool_);
    flow.default_destination_continent = continent_of(flow.default_destination);
    flow.domain = request.domain;
    flows_.push_back(std::move(flow));

    // Record the observed alternative server location for this FQDN/TLD.
    const auto& domain = world_->domain(request.domain);
    const auto destination = flows_.back().default_destination;
    if (!destination.empty()) {
      countries_by_fqdn_[domain.fqdn].insert(destination);
      countries_by_registrable_[domain.registrable].insert(destination);
    }
  }
}

const std::set<std::string>* LocalizationStudy::alternatives(const StudyFlow& flow,
                                                             Scenario scenario) const {
  const auto& domain = world_->domain(flow.domain);
  switch (scenario) {
    case Scenario::Default:
      return nullptr;
    case Scenario::RedirectFqdn: {
      const auto it = countries_by_fqdn_.find(domain.fqdn);
      return it == countries_by_fqdn_.end() ? nullptr : &it->second;
    }
    case Scenario::RedirectTld:
    case Scenario::RedirectTldPlusMirroring: {
      const auto it = countries_by_registrable_.find(domain.registrable);
      return it == countries_by_registrable_.end() ? nullptr : &it->second;
    }
    case Scenario::PopMirroring: {
      const auto& org = world_->org(domain.org);
      if (org.cloud == world::kNoCloud) return nullptr;
      const auto it = cloud_countries_.find(org.cloud);
      return it == cloud_countries_.end() ? nullptr : &it->second;
    }
    case Scenario::CloudMigration:
      return &all_cloud_countries_;
  }
  return nullptr;
}

bool LocalizationStudy::scenario_confines_to_country(const StudyFlow& flow,
                                                     Scenario scenario) const {
  if (flow.default_destination == flow.origin) return true;
  const auto* alt = alternatives(flow, scenario);
  if (alt != nullptr && alt->contains(flow.origin)) return true;
  if (scenario == Scenario::RedirectTldPlusMirroring) {
    // Also allow the org's cloud footprint on top of TLD redirection.
    const auto* mirrored = alternatives(flow, Scenario::PopMirroring);
    if (mirrored != nullptr && mirrored->contains(flow.origin)) return true;
  }
  return false;
}

bool LocalizationStudy::scenario_confines_to_continent(const StudyFlow& flow,
                                                       Scenario scenario) const {
  if (flow.default_destination_continent == flow.origin_continent) return true;
  const auto* alt = alternatives(flow, scenario);
  if (alt != nullptr && set_has_continent(*alt, flow.origin_continent)) return true;
  if (scenario == Scenario::RedirectTldPlusMirroring) {
    const auto* mirrored = alternatives(flow, Scenario::PopMirroring);
    if (mirrored != nullptr && set_has_continent(*mirrored, flow.origin_continent)) {
      return true;
    }
  }
  return false;
}

LocalizationResult LocalizationStudy::evaluate(Scenario scenario) const {
  LocalizationResult result;
  std::uint64_t in_country = 0;
  std::uint64_t in_continent = 0;
  for (const auto& flow : flows_) {
    ++result.total;
    if (scenario_confines_to_country(flow, scenario)) ++in_country;
    if (scenario_confines_to_continent(flow, scenario)) ++in_continent;
  }
  if (result.total > 0) {
    result.in_country_pct =
        100.0 * static_cast<double>(in_country) / static_cast<double>(result.total);
    result.in_continent_pct =
        100.0 * static_cast<double>(in_continent) / static_cast<double>(result.total);
  }
  return result;
}

std::map<std::string, LocalizationResult> LocalizationStudy::evaluate_per_country(
    Scenario scenario) const {
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> tallies;  // total, confined
  std::map<std::string, std::uint64_t> in_continent;
  for (const auto& flow : flows_) {
    auto& tally = tallies[flow.origin];
    ++tally.first;
    if (scenario_confines_to_country(flow, scenario)) ++tally.second;
    if (scenario_confines_to_continent(flow, scenario)) ++in_continent[flow.origin];
  }
  std::map<std::string, LocalizationResult> out;
  for (const auto& [country, tally] : tallies) {
    LocalizationResult result;
    result.total = tally.first;
    result.in_country_pct =
        100.0 * static_cast<double>(tally.second) / static_cast<double>(tally.first);
    result.in_continent_pct = 100.0 * static_cast<double>(in_continent[country]) /
                              static_cast<double>(tally.first);
    out[country] = result;
  }
  return out;
}

std::map<std::string, double> LocalizationStudy::improvement_per_country(
    Scenario baseline, Scenario scenario) const {
  const auto base = evaluate_per_country(baseline);
  const auto improved = evaluate_per_country(scenario);
  std::map<std::string, double> out;
  for (const auto& [country, result] : improved) {
    const auto it = base.find(country);
    const double baseline_pct = it == base.end() ? 0.0 : it->second.in_country_pct;
    out[country] = result.in_country_pct - baseline_pct;
  }
  return out;
}

}  // namespace cbwt::whatif
