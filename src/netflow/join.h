// Out-of-core radix-partitioned hash join of NetFlow records against
// the tracker-IP set — the paper's headline scale-up (>60M users, four
// daily snapshots, Tables 7/8) run at snapshot sizes that no longer
// fit in RAM.
//
// Two passes over the mmap substrate:
//
//   Pass 1 (partition): the input index range is split into shards by
//   runtime::plan_shards — a pure function of (record count, spill
//   geometry), never of the thread count — and each shard streams its
//   records from the RecordSource in bounded chunks on a pool worker,
//   routing every surviving record by destination-IP hash into
//   per-(shard, partition) runs of sealed 4 KiB compressed flow pages
//   (netflow/flow_page.h, FlowPageImageBuilder's in-place encoder).
//   Sealed runs travel through runtime::ordered_stream's bounded
//   channel to the calling thread, which appends them to the
//   per-partition store::RecordFileWriters strictly in shard order
//   *while later shards are still encoding* — the writer thread's I/O
//   overlaps the workers' decode+pack compute. Page boundaries fall
//   exactly at shard boundaries, so the spill byte stream is a pure
//   function of the record sequence and the shard plan — byte-identical
//   at any thread count. Fault-injected export drops are decided here,
//   while the record's *absolute* input index is known (ranged chunk
//   iteration keeps indices absolute per shard), so the drop set is
//   identical to the in-memory collector's; dropped records are never
//   spilled.
//
//   Pass 2 (build + probe): the tracker side — small by construction —
//   is split into one dense open-addressing table per partition
//   (arena-free, power-of-two capacity, allocation-free probe loop);
//   partitions are then probed in parallel through
//   runtime::sharded_reduce, each shard streaming its spill files page
//   by page and folding per-partition CollectionResults that merge in
//   shard order. Because every per-record decision is order-free once
//   drops are fixed, the result is bit-identical to the in-memory
//   collect_sharded at any thread count, partition count or chunk size
//   — the equivalence corpus in tests/test_join_equivalence.cpp pins
//   exactly that.
//
// A pass-1 manifest (store::Manifest, join_manifest.txt in the spill
// directory) binds the spill files to the input file's superblock
// checksum *and* the shard-plan geometry that shaped the page layout;
// re-running the join over the same store-backed input reuses the
// spill set and goes straight to pass 2 (resume-mid-join). A manifest
// written under different geometry — or by a pre-geometry build —
// silently falls back to re-partitioning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "fault/retry.h"
#include "netflow/collector.h"
#include "netflow/profile.h"
#include "netflow/wire.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "store/dataset.h"

namespace cbwt::netflow {

/// Tuning knobs of one join run. The defaults are the production shape;
/// every knob is swept by the equivalence corpus because none of them
/// may change the result.
struct JoinConfig {
  /// Directory for per-partition spill files and the pass-1 manifest.
  /// Created if absent; files are overwritten per run (no cleanup).
  std::string spill_directory;
  /// Radix fan-out of pass 1. More partitions = smaller per-partition
  /// probe working sets; 16 at the default chunk size keeps each
  /// partition's build table inside L2 at paper scale.
  std::size_t partitions = 16;
  /// Input records per streamed chunk in pass 1.
  std::size_t chunk_records = store::kDefaultChunkRecords;
  /// Spill pages per streamed chunk in pass 2 (2048 pages = 8 MiB of
  /// page file per probe step, the store's residency unit).
  std::size_t probe_chunk_pages = 2048;
  /// Floor on input records per pass-1 spill shard. Together with
  /// spill_max_shards this fixes the shard plan — and therefore the
  /// page layout — as a pure function of the input size: page
  /// boundaries fall at shard boundaries, so changing either knob
  /// changes the spill bytes (and invalidates resume), while changing
  /// the thread count never does. 64 Ki records ≈ 3.6 MiB of wire
  /// input per shard, enough to amortize scheduling.
  std::size_t spill_min_shard_records = 64 * 1024;
  /// Cap on pass-1 spill shards; bounds the in-flight sealed-run
  /// memory (ordered_stream's channel holds O(threads) runs).
  std::size_t spill_max_shards = 256;
  /// Reuse an existing spill set whose manifest matches this input
  /// (store-backed sources only — in-memory inputs have no superblock
  /// checksum to bind to, so they always re-partition).
  bool resume = true;
};

/// What one join run did, beyond the CollectionResult.
struct JoinStats {
  std::uint64_t spill_bytes = 0;    ///< finalized spill file bytes, all partitions
  std::uint64_t spill_records = 0;  ///< records written to spill pages
  std::uint64_t spill_pages = 0;    ///< 4 KiB pages across all partitions
  std::uint64_t spill_shards = 0;   ///< pass-1 shard-plan size (thread-independent)
  bool resumed = false;             ///< pass 1 skipped via a matching manifest
};

/// The radix route: which partition `ip` hashes to. Exposed so tests
/// can build adversarial inputs (duplicate destination IPs across
/// partitions, single-partition pile-ups) without guessing the mix.
[[nodiscard]] std::size_t join_partition_of(const net::IpAddress& ip,
                                            std::size_t partitions) noexcept;

/// Runs the streaming join. Returns exactly what collect_sharded over
/// the same records returns — counters, per-IP map, drop set — for any
/// thread count and any JoinConfig. `registry` (optional) records the
/// "netflow/join" span, the collect-parity counters, the
/// cbwt_netflow_join_{partitions,spill_bytes,spill_records,spill_pages,
/// spill_shards,resumed,probe_records}_total counters, the
/// cbwt_netflow_join_{spill,probe}_seconds phase histograms and
/// per-shard ScopedTrace events; `fault_plan` (optional) applies
/// netflow_export drops by absolute record index; `stats` (optional)
/// receives the spill volume breakdown.
[[nodiscard]] CollectionResult join_flows(const store::RecordSource<WireCodec>& source,
                                          const TrackerIpIndex& trackers,
                                          const IspProfile& isp, const JoinConfig& config,
                                          runtime::ThreadPool* pool,
                                          obs::Registry* registry = nullptr,
                                          const fault::FaultPlan* fault_plan = nullptr,
                                          JoinStats* stats = nullptr);

}  // namespace cbwt::netflow
