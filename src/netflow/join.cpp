#include "netflow/join.h"

#include <array>
#include <bit>
#include <filesystem>
#include <utility>
#include <vector>

#include "netflow/flow_page.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "runtime/parallel.h"
#include "store/checkpoint.h"
#include "store/record_file.h"
#include "store/superblock.h"
#include "util/contract.h"
#include "util/prng.h"

namespace cbwt::netflow {

// The duck-typed page codec promises to mirror the store's kind
// registry; this is the translation unit where the two headers meet,
// so it pins the contract (same discipline as snapshot_store.cpp).
static_assert(FlowPageCodec::kKind ==
                  static_cast<std::uint16_t>(store::RecordKind::NetflowPage),
              "FlowPageCodec::kKind must track store::RecordKind::NetflowPage");
static_assert(FlowPageCodec::kRecordSize == kFlowPageBytes);

namespace {

/// Stage label of the probe pass's per-shard RNG streams (unused by the
/// probe itself, but part of the sharded_reduce contract).
constexpr std::uint64_t kJoinStageLabel = 0x101AD;

/// Stage label of the pass-1 spill shards' RNG streams (likewise unused
/// — spill is deterministic — but part of the ordered_stream contract).
constexpr std::uint64_t kJoinSpillStageLabel = 0x5B111;

/// Manifest schema of the pass-1 spill set.
constexpr std::string_view kManifestKind = "netflow-join-spill";

/// Bucket edges of the per-phase duration histograms (seconds). Wide
/// log-ish spacing: the smoke run lands in the sub-second buckets, the
/// paper-scale sweep in the tens of seconds.
constexpr std::array<double, 8> kPhaseSecondsBounds = {0.001, 0.01, 0.1,  0.5,
                                                       1.0,   5.0,  30.0, 120.0};

/// Dense open-addressing membership set over one partition's tracker
/// IPs: power-of-two capacity at most half full, linear probing, empty
/// slots tagged by hash 0 (real hash 0 is remapped). contains() is
/// allocation-free and branch-cheap — the probe loop's only lookup.
class DenseIpSet {
 public:
  explicit DenseIpSet(const std::vector<net::IpAddress>& ips) {
    if (ips.empty()) return;
    std::size_t capacity = 2;
    while (capacity < ips.size() * 2) capacity *= 2;
    slots_.resize(capacity);
    mask_ = capacity - 1;
    for (const auto& ip : ips) insert(ip);
  }

  [[nodiscard]] bool contains(const net::IpAddress& ip) const noexcept {
    if (slots_.empty()) return false;
    const std::uint64_t hash = slot_hash(ip);
    for (std::size_t index = hash & mask_;; index = (index + 1) & mask_) {
      const Slot& slot = slots_[index];
      if (slot.hash == 0) return false;
      if (slot.hash == hash && slot.ip == ip) return true;
    }
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;  ///< 0 = empty
    net::IpAddress ip;
  };

  [[nodiscard]] static std::uint64_t slot_hash(const net::IpAddress& ip) noexcept {
    const std::uint64_t hash = ip.hash();
    return hash == 0 ? 1 : hash;
  }

  void insert(const net::IpAddress& ip) {
    const std::uint64_t hash = slot_hash(ip);
    for (std::size_t index = hash & mask_;; index = (index + 1) & mask_) {
      Slot& slot = slots_[index];
      if (slot.hash == 0) {
        slot.hash = hash;
        slot.ip = ip;
        return;
      }
      if (slot.hash == hash && slot.ip == ip) return;  // duplicate input
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
};

/// Per-partition spill file path. Plain indices, not zero-padded: the
/// manifest, not a directory sort, is the source of truth.
[[nodiscard]] std::string partition_path(const JoinConfig& config, std::size_t p) {
  return config.spill_directory + "/part_" + std::to_string(p) + ".rec";
}

/// Folds everything the drop set depends on — plan seed, site hash, all
/// four rates — into one value. Two runs whose signatures match drop
/// exactly the same absolute record indices, so a spill set written
/// under one plan is reusable under the other.
[[nodiscard]] std::uint64_t fault_signature(const fault::FaultPlan* plan) {
  if (plan == nullptr) return 0;
  const fault::Site site = plan->site(fault::sites::kNetflowExport);
  if (!site.rates.any()) return 0;
  std::uint64_t sig = util::mix64(plan->seed ^ 0xFA017901AULL);
  sig = util::mix64(sig ^ site.hash);
  sig = util::mix64(sig ^ std::bit_cast<std::uint64_t>(site.rates.timeout));
  sig = util::mix64(sig ^ std::bit_cast<std::uint64_t>(site.rates.error));
  sig = util::mix64(sig ^ std::bit_cast<std::uint64_t>(site.rates.slow));
  sig = util::mix64(sig ^ std::bit_cast<std::uint64_t>(site.rates.stale));
  return sig;
}

/// Tries to adopt an existing spill set: the manifest must match this
/// input's record count and superblock checksum, the partition fan-out,
/// the page format version, the fault signature *and* the shard-plan
/// geometry (spill_min_shard_records / spill_max_shards — page
/// boundaries fall at shard boundaries, so different geometry means a
/// different byte layout), and every partition file must open clean
/// (superblock + checksum validation). Any mismatch, missing file,
/// missing key (a manifest written before the geometry keys existed) or
/// corruption falls back to re-partitioning — resume is an
/// optimization, never a correctness risk.
[[nodiscard]] bool try_resume(const std::string& manifest_path, const JoinConfig& config,
                              std::uint64_t input_records, std::uint64_t input_checksum,
                              std::uint64_t fault_sig, std::uint64_t& dropped,
                              JoinStats& stats) {
  try {
    const auto manifest = store::read_manifest(manifest_path);
    if (manifest.get("kind") != kManifestKind) return false;
    if (manifest.get_u64("page_version") != std::uint64_t{kFlowPageVersion}) return false;
    if (manifest.get_u64("partitions") != std::uint64_t{config.partitions}) return false;
    if (manifest.get_u64("input_records") != input_records) return false;
    if (manifest.get_u64("input_checksum") != input_checksum) return false;
    if (manifest.get_u64("fault_signature") != fault_sig) return false;
    if (manifest.get_u64("spill_min_shard_records") !=
        std::uint64_t{config.spill_min_shard_records}) {
      return false;
    }
    if (manifest.get_u64("spill_max_shards") != std::uint64_t{config.spill_max_shards}) {
      return false;
    }
    const auto manifest_dropped = manifest.get_u64("dropped_records");
    const auto spill_records = manifest.get_u64("spill_records");
    const auto spill_pages = manifest.get_u64("spill_pages");
    const auto spill_bytes = manifest.get_u64("spill_bytes");
    const auto spill_shards = manifest.get_u64("spill_shards");
    if (!manifest_dropped || !spill_records || !spill_pages || !spill_bytes ||
        !spill_shards) {
      return false;
    }
    std::uint64_t pages = 0;
    for (std::size_t p = 0; p < config.partitions; ++p) {
      pages += store::RecordFileReader<FlowPageCodec>(partition_path(config, p)).size();
    }
    if (pages != *spill_pages) return false;
    dropped = *manifest_dropped;
    stats.spill_records = *spill_records;
    stats.spill_pages = *spill_pages;
    stats.spill_bytes = *spill_bytes;
    stats.spill_shards = *spill_shards;
    stats.resumed = true;
    return true;
  } catch (const store::StoreError&) {
    return false;
  }
}

/// One shard's pass-1 output: per-partition runs of sealed page images
/// plus the shard's record/drop tallies. ~1.6 MiB per 64 Ki-record
/// shard at the default geometry; ordered_stream's bounded channel
/// keeps at most O(threads) of these in flight.
struct SpillRun {
  std::vector<std::vector<FlowPageImage>> pages;  ///< [partition] -> sealed images
  std::uint64_t records = 0;                      ///< records encoded into pages
  std::uint64_t dropped = 0;                      ///< fault-injected export drops
};

/// The shard-plan geometry pass 1 runs under. Pure in (input size,
/// config) — computed identically by the spill pass, the manifest
/// writer and join_flows' stats, and never consulted by the probe.
[[nodiscard]] runtime::ShardOptions spill_shard_options(const JoinConfig& config,
                                                        runtime::ChannelStats* stats) {
  return {.min_shard_items = config.spill_min_shard_records,
          .max_shards = config.spill_max_shards,
          .channel_stats = stats};
}

/// Pass 1, parallel + deterministic: the input index range is sharded
/// by runtime::plan_shards (pure in (n, spill geometry) — rule 1 of
/// parallel.h), each shard decodes its ranged chunks on a pool worker
/// and packs surviving records into per-partition page runs with the
/// in-place FlowPageImageBuilder, and the calling thread appends the
/// sealed runs to the partition writers strictly in shard order through
/// runtime::ordered_stream — writer I/O overlaps producer compute.
/// Page boundaries fall at shard boundaries (each shard seals its open
/// pages at range end), so the spill byte stream is a pure function of
/// the record sequence and the shard plan: byte-identical at any thread
/// count, which is what lets the resume manifest bind to the geometry
/// rather than the execution. Export drops are decided at the absolute
/// record index (ranged chunks keep bases absolute), so the drop set
/// equals the in-memory collector's.
void partition_spill(const store::RecordSource<WireCodec>& source,
                     const JoinConfig& config, runtime::ThreadPool* pool,
                     const fault::FaultPlan* fault_plan, obs::Registry* registry,
                     runtime::ChannelStats* channel_stats, std::uint64_t& dropped,
                     JoinStats& stats) {
  obs::ScopedSpan span(registry, "netflow/join/partition");
  obs::ScopedHistogramTimer timer(registry, "cbwt_netflow_join_spill_seconds",
                                  kPhaseSecondsBounds);
  const fault::Site export_site =
      fault_plan != nullptr ? fault_plan->site(fault::sites::kNetflowExport)
                            : fault::Site{};
  const bool inject = fault_plan != nullptr && export_site.rates.any();

  // Incremental checksums: the writer folds each page into the running
  // FNV-1a while it is cache-hot, so finalize() below stamps the
  // superblock without re-reading the whole spill file on the ordered
  // (serial) writer thread.
  std::vector<store::RecordFileWriter<FlowPageCodec>> writers;
  writers.reserve(config.partitions);
  for (std::size_t p = 0; p < config.partitions; ++p) {
    writers.emplace_back(partition_path(config, p), registry,
                         /*incremental_checksum=*/true);
  }

  const auto options = spill_shard_options(config, channel_stats);
  stats.spill_shards = runtime::plan_shards(source.size(), options).size();
  runtime::ordered_stream<SpillRun>(
      pool, source.size(), options, /*seed=*/0, kJoinSpillStageLabel,
      [&](runtime::ShardRange range, std::size_t shard, util::Rng& /*rng*/) {
        obs::ScopedTrace trace(registry, "netflow/join/spill_shard", shard);
        SpillRun run;
        run.pages.resize(config.partitions);
        std::vector<FlowPageImageBuilder> builders(config.partitions);
        source.for_each_chunk_range(
            range.begin, range.end, config.chunk_records,
            [&](std::span<const RawRecord> chunk, std::uint64_t base) {
              for (std::size_t i = 0; i < chunk.size(); ++i) {
                if (inject) {
                  const fault::FaultKind kind = fault::decide(
                      fault_plan->seed, export_site, base + i, /*attempt=*/0);
                  if (kind == fault::FaultKind::Timeout ||
                      kind == fault::FaultKind::Error) {
                    ++run.dropped;
                    continue;  // lost between router and collector; never spilled
                  }
                }
                const RawRecord& record = chunk[i];
                const std::size_t p = join_partition_of(record.dst, config.partitions);
                if (!builders[p].try_add(record)) {
                  builders[p].seal_into(run.pages[p]);
                  const bool added = builders[p].try_add(record);
                  CBWT_ASSERT(added);  // one record always fits an empty page
                }
                ++run.records;
              }
            });
        // Seal open pages at the shard boundary: the page layout then
        // depends on the shard plan, not on which thread ran the shard.
        for (std::size_t p = 0; p < config.partitions; ++p) {
          if (!builders[p].empty()) builders[p].seal_into(run.pages[p]);
        }
        return run;
      },
      [&](std::size_t /*shard*/, SpillRun&& run) {
        // Ordered writer stage, calling thread only: appends are raw
        // memcpys of sealed images, so the file contents concatenate
        // the shards' runs in plan order.
        for (std::size_t p = 0; p < config.partitions; ++p) {
          for (const FlowPageImage& image : run.pages[p]) {
            writers[p].append_encoded(image.bytes);
          }
        }
        stats.spill_records += run.records;
        dropped += run.dropped;
      });

  for (std::size_t p = 0; p < config.partitions; ++p) {
    writers[p].finalize();
    stats.spill_pages += writers[p].size();
    stats.spill_bytes += store::kSuperblockSize + writers[p].size() * kFlowPageBytes;
  }
  span.set_items(stats.spill_records);

  store::Manifest manifest;
  manifest.set("kind", std::string(kManifestKind));
  manifest.set_u64("page_version", kFlowPageVersion);
  manifest.set_u64("partitions", config.partitions);
  manifest.set_u64("input_records", source.size());
  manifest.set_u64("input_checksum",
                   source.store_backed() ? source.reader()->checksum() : 0);
  manifest.set_u64("fault_signature", fault_signature(fault_plan));
  manifest.set_u64("spill_min_shard_records", config.spill_min_shard_records);
  manifest.set_u64("spill_max_shards", config.spill_max_shards);
  manifest.set_u64("dropped_records", dropped);
  manifest.set_u64("spill_records", stats.spill_records);
  manifest.set_u64("spill_pages", stats.spill_pages);
  manifest.set_u64("spill_bytes", stats.spill_bytes);
  manifest.set_u64("spill_shards", stats.spill_shards);
  store::write_manifest(config.spill_directory + "/join_manifest.txt", manifest);
}

}  // namespace

std::size_t join_partition_of(const net::IpAddress& ip, std::size_t partitions) noexcept {
  return static_cast<std::size_t>(util::mix64(ip.hash()) %
                                  static_cast<std::uint64_t>(partitions));
}

CollectionResult join_flows(const store::RecordSource<WireCodec>& source,
                            const TrackerIpIndex& trackers, const IspProfile& /*isp*/,
                            const JoinConfig& config, runtime::ThreadPool* pool,
                            obs::Registry* registry, const fault::FaultPlan* fault_plan,
                            JoinStats* stats) {
  CBWT_EXPECTS(config.partitions > 0);
  CBWT_EXPECTS(!config.spill_directory.empty());
  CBWT_EXPECTS(config.chunk_records > 0);
  CBWT_EXPECTS(config.probe_chunk_pages > 0);
  CBWT_EXPECTS(config.spill_min_shard_records > 0);
  CBWT_EXPECTS(config.spill_max_shards > 0);
  obs::ScopedSpan span(registry, "netflow/join");
  std::filesystem::create_directories(config.spill_directory);

  std::uint64_t dropped = 0;
  JoinStats run_stats;
  runtime::ChannelStats channel_stats;  // shared by spill + probe streams
  const bool resumed =
      config.resume && source.store_backed() &&
      try_resume(config.spill_directory + "/join_manifest.txt", config, source.size(),
                 source.reader()->checksum(), fault_signature(fault_plan), dropped,
                 run_stats);
  if (!resumed) {
    partition_spill(source, config, pool, fault_plan, registry, &channel_stats, dropped,
                    run_stats);
  }

  // Build side: one dense table per partition over the tracker IPs. The
  // whole set stays resident — it is the small side of the join — so a
  // source-address probe can reach across partitions.
  std::vector<DenseIpSet> tables;
  {
    obs::ScopedSpan build_span(registry, "netflow/join/build");
    std::vector<std::vector<net::IpAddress>> split(config.partitions);
    for (const auto& ip : trackers.ips()) {
      split[join_partition_of(ip, config.partitions)].push_back(ip);
    }
    tables.reserve(config.partitions);
    for (const auto& part : split) tables.emplace_back(part);
    build_span.set_items(trackers.size());
  }

  // Probe: partitions fan out across shards (min_shard_items = 1 so a
  // 16-partition join still parallelizes); per-shard partial results
  // merge in shard order. Every per-record update below is order-free —
  // counter sums and per-IP increments — so the partition-sliced order
  // equals the sequential collect() order bit for bit.
  obs::ScopedSpan probe_span(registry, "netflow/join/probe");
  obs::ScopedHistogramTimer probe_timer(registry, "cbwt_netflow_join_probe_seconds",
                                        kPhaseSecondsBounds);
  auto result = runtime::sharded_reduce<CollectionResult>(
      pool, config.partitions, {.min_shard_items = 1, .channel_stats = &channel_stats},
      /*seed=*/0, kJoinStageLabel,
      [&](runtime::ShardRange range, std::size_t shard, util::Rng& /*rng*/) {
        obs::ScopedTrace trace(registry, "netflow/join/probe_shard", shard);
        CollectionResult part;
        for (std::size_t p = range.begin; p < range.end; ++p) {
          const store::RecordFileReader<FlowPageCodec> reader(partition_path(config, p),
                                                             registry);
          reader.for_each_chunk(
              config.probe_chunk_pages,
              [&](std::span<const FlowPage> pages, std::uint64_t /*page_base*/) {
                for (const FlowPage& page : pages) {
                  for (const RawRecord& record : page.records) {
                    ++part.records_seen;
                    if (!record.internal_interface) continue;
                    ++part.internal_records;
                    // dst routed this record here, so its lookup stays in
                    // this partition's table; src may hash anywhere.
                    const bool dst_is_tracker = tables[p].contains(record.dst);
                    if (!dst_is_tracker &&
                        !tables[join_partition_of(record.src, config.partitions)]
                             .contains(record.src)) {
                      continue;
                    }
                    const bool subscriber_is_src = dst_is_tracker;
                    const net::IpAddress& remote =
                        subscriber_is_src ? record.dst : record.src;
                    const std::uint16_t remote_port =
                        subscriber_is_src ? record.dst_port : record.src_port;
                    ++part.matched_records;
                    if (remote_port == 443) ++part.https_records;
                    if (record.protocol == 17) ++part.udp_records;
                    ++part.per_ip[remote];
                  }
                }
              });
        }
        return part;
      },
      merge_collection);
  result.dropped_records += dropped;
  CBWT_ENSURES(result.matched_records <= result.internal_records);
  CBWT_ENSURES(result.internal_records <= result.records_seen);
  CBWT_ENSURES(result.records_seen + result.dropped_records == source.size());

  probe_span.set_items(result.records_seen);
  span.set_items(result.records_seen);
  if (registry != nullptr) {
    registry->counter("cbwt_netflow_records_collected_total").add(result.records_seen);
    registry->counter("cbwt_netflow_internal_total").add(result.internal_records);
    registry->counter("cbwt_netflow_matched_total").add(result.matched_records);
    registry->counter("cbwt_netflow_join_partitions_total").add(config.partitions);
    registry->counter("cbwt_netflow_join_spill_bytes_total").add(run_stats.spill_bytes);
    registry->counter("cbwt_netflow_join_spill_records_total")
        .add(run_stats.spill_records);
    registry->counter("cbwt_netflow_join_spill_pages_total").add(run_stats.spill_pages);
    registry->counter("cbwt_netflow_join_spill_shards_total")
        .add(run_stats.spill_shards);
    // Registered even when 0 so fresh and resumed runs export the same
    // counter key set (report diffs compare keys, not just values).
    registry->counter("cbwt_netflow_join_resumed_total").add(resumed ? 1 : 0);
    registry->counter("cbwt_netflow_join_probe_records_total").add(result.records_seen);
    obs::record_channel_stats(registry, channel_stats);
  }
  if (fault_plan != nullptr &&
      fault_plan->site(fault::sites::kNetflowExport).rates.any()) {
    const auto metrics =
        fault::SiteMetrics::resolve(registry, fault::sites::kNetflowExport);
    if (metrics.injected != nullptr && result.dropped_records > 0) {
      metrics.injected->add(result.dropped_records);
    }
    metrics.count_degraded(result.dropped_records);
  }
  if (stats != nullptr) *stats = run_stats;
  return result;
}

}  // namespace cbwt::netflow
