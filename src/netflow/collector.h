// NetFlow collection and tracker matching (§7.2): the collector keeps
// only user-facing (internal edge) interfaces, anonymizes the subscriber
// side to a country code, and joins the remote side against the tracker
// IP list produced by the extension pipeline — restricted to IPs whose
// pDNS validity window covers the snapshot day, which removes
// dynamic-IP-reuse noise.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/flows.h"
#include "fault/retry.h"
#include "netflow/profile.h"
#include "netflow/record.h"
#include "obs/metrics.h"
#include "pdns/store.h"
#include "runtime/thread_pool.h"

namespace cbwt::netflow {

/// The set of known tracking-service IPs, optionally time-bounded.
class TrackerIpIndex {
 public:
  void add(const net::IpAddress& ip);

  /// Builds the index from a pDNS store: every IP with at least one
  /// (domain, IP) record whose window covers `day`.
  [[nodiscard]] static TrackerIpIndex from_pdns(const pdns::Store& store, pdns::Day day);

  /// Same, but ignoring validity windows (the no-window ablation).
  [[nodiscard]] static TrackerIpIndex from_pdns_all_time(const pdns::Store& store);

  [[nodiscard]] bool contains(const net::IpAddress& ip) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return ips_.size(); }

  /// The raw IP set, for consumers that build their own lookup
  /// structure over it (the out-of-core join's dense partition tables).
  [[nodiscard]] const std::unordered_set<net::IpAddress>& ips() const noexcept {
    return ips_;
  }

 private:
  std::unordered_set<net::IpAddress> ips_;
};

/// Aggregates of one ISP-day collection run.
struct CollectionResult {
  std::uint64_t records_seen = 0;
  std::uint64_t internal_records = 0;    ///< records surviving the edge filter
  std::uint64_t matched_records = 0;     ///< records touching a tracker IP
  std::uint64_t https_records = 0;       ///< matched records on port 443
  std::uint64_t udp_records = 0;         ///< matched records on UDP (QUIC)
  /// Exports lost between router and collector (fault injection only;
  /// dropped records never count as seen — they never arrived).
  std::uint64_t dropped_records = 0;
  /// Per-tracker-IP sampled counters (the hash-and-count of §7.2).
  std::unordered_map<net::IpAddress, std::uint64_t> per_ip;

  /// Matched flows in the analyzer's format (origin = ISP country).
  [[nodiscard]] std::vector<analysis::Flow> flows(std::string origin_country) const;
};

/// Merges a partial result into an accumulator: counter sums and per-IP
/// counter merges, both order-free. The one merge used by every
/// aggregation path (sharded, store-chunked), so they cannot drift.
void merge_collection(CollectionResult& acc, CollectionResult&& part);

/// Fault-injection knobs of one collect() call. The drop decision for a
/// record is stateless in its *absolute* index (`base_index` + offset),
/// so a sharded run — where each shard collects a subspan — drops
/// exactly the records the serial run drops, whatever the shard plan.
struct CollectOptions {
  const fault::FaultPlan* fault_plan = nullptr;  ///< null = no injection
  std::uint64_t base_index = 0;  ///< absolute index of records[0]
};

/// Runs the collector over one exported snapshot. A record whose
/// `netflow_export` fate is Timeout/Error is dropped before any
/// counting (UDP export loss between router and collector) and shows up
/// only in `dropped_records`.
[[nodiscard]] CollectionResult collect(std::span<const RawRecord> records,
                                       const TrackerIpIndex& trackers,
                                       const IspProfile& isp,
                                       const CollectOptions& options = {});

/// Sharded collection: record shards reduce to partial CollectionResults
/// that merge in shard order (counter sums and per-IP counter merges are
/// order-free, so the result equals the serial collect() bit for bit).
///
/// `registry` (optional) records a "netflow/collect" span, the
/// collected/internal/matched record counters, and the reduce channel's
/// throughput; never affects the result. `fault_plan` (optional)
/// applies `netflow_export` drops by absolute record index — the
/// sharded result stays bit-identical to serial collect() under the
/// same plan. The cbwt_fault_netflow_export_* counters are registered
/// only when the plan actually injects at that site.
[[nodiscard]] CollectionResult collect_sharded(std::span<const RawRecord> records,
                                               const TrackerIpIndex& trackers,
                                               const IspProfile& isp,
                                               runtime::ThreadPool* pool,
                                               obs::Registry* registry = nullptr,
                                               const fault::FaultPlan* fault_plan = nullptr);

}  // namespace cbwt::netflow
