// Synthetic NetFlow export for one ISP and one snapshot day. The
// generator produces the *sampled* stream directly (packet sampling at a
// fixed rate is what real exporters do; simulating unsampled traffic for
// 15M households would only be thrown away again). Volumes are scaled by
// `NetflowScale` relative to the paper's Table 8 and the scale is
// reported alongside every result.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dns/resolver.h"
#include "fault/retry.h"
#include "netflow/profile.h"
#include "netflow/record.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::netflow {

struct GeneratorConfig {
  /// Multiplier on the paper-scale sampled-flow volume (1.0 would emit
  /// DE-Broadband's full 1.057e9 records per day).
  double scale = 1e-3;
  /// Sampled tracking flows per subscriber-million per day at
  /// web_activity 1.0, calibrated against Table 8 (DE-Broadband: 15 M
  /// households -> ~1.05e9 sampled flows).
  double flows_per_subscriber_m = 70.0e6;
  /// Non-tracking web flows emitted per tracking flow (kept small; the
  /// "tracking is ~3% of all flows" figure is reported analytically).
  double background_ratio = 0.25;
  /// Port mix (Table 8 text: >83% of tracking traffic on 443).
  double https_share = 0.834;
  /// Share of 443 traffic on UDP/QUIC.
  double quic_share = 0.12;
  std::uint16_t routers = 48;
};

/// One ISP-day of sampled records, plus bookkeeping for the analysis.
struct SnapshotExport {
  std::vector<RawRecord> records;
  std::uint64_t tracking_intended = 0;   ///< ground-truth tracking records
  std::uint64_t background_intended = 0;
};

/// Emits the sampled records of `isp` on snapshot `snapshot`, drawing
/// every record from the single serial `rng` stream (the pre-runtime
/// code path; kept for ablations that sweep a generator in isolation).
[[nodiscard]] SnapshotExport generate_snapshot(const world::World& world,
                                               const dns::Resolver& resolver,
                                               const IspProfile& isp,
                                               const Snapshot& snapshot,
                                               const GeneratorConfig& config,
                                               util::Rng& rng);

/// Sharded generation: record index space is split by plan_shards and
/// every shard draws from its own RNG derived from (seed, stream label,
/// shard), so the exported records are bit-identical for any pool size
/// — including pool == nullptr, which is the serial reference. Record
/// order is shard order (deterministic), not interleaved arrival order.
///
/// `registry` (optional) records a "netflow/generate" span, the
/// generated/tracking/background record counters, and the sharded
/// streams' channel throughput; never affects the exported records.
///
/// `fault_plan` (optional) subjects each record's subscriber DNS lookup
/// to the `dns` injection site: a lookup that exhausts its retries (or
/// hits an open per-domain circuit breaker) emits no flow — the
/// subscriber's fetch simply failed. Each shard owns its own Retrier,
/// so breaker trajectories follow the stable shard plan and the export
/// stays bit-identical across pool sizes.
[[nodiscard]] SnapshotExport generate_snapshot_sharded(const world::World& world,
                                                       const dns::Resolver& resolver,
                                                       const IspProfile& isp,
                                                       const Snapshot& snapshot,
                                                       const GeneratorConfig& config,
                                                       std::uint64_t seed,
                                                       runtime::ThreadPool* pool,
                                                       obs::Registry* registry = nullptr,
                                                       const fault::FaultPlan* fault_plan = nullptr);

/// Bookkeeping of one streamed snapshot; the record payload went to the
/// sink rather than a returned vector.
struct SnapshotCounts {
  std::uint64_t records = 0;
  std::uint64_t tracking_intended = 0;
  std::uint64_t background_intended = 0;
};

/// Streaming form of generate_snapshot_sharded: delivers the *identical*
/// record sequence (same seed ⇒ same records in the same order, at any
/// pool size) to `sink` as ordered batches instead of accumulating one
/// vector. generate_snapshot_sharded is this with an appending sink;
/// store-backed export (netflow/snapshot_store.h) is this with a
/// RecordFileWriter sink — which is how the two paths stay bit-identical
/// by construction. `sink` runs on the calling thread, in order.
[[nodiscard]] SnapshotCounts generate_snapshot_stream(
    const world::World& world, const dns::Resolver& resolver, const IspProfile& isp,
    const Snapshot& snapshot, const GeneratorConfig& config, std::uint64_t seed,
    runtime::ThreadPool* pool,
    const std::function<void(std::span<const RawRecord>)>& sink,
    obs::Registry* registry = nullptr, const fault::FaultPlan* fault_plan = nullptr);

}  // namespace cbwt::netflow
