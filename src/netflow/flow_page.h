// Fixed-size compressed flow pages: the spill unit of the out-of-core
// NetFlow join (netflow/join.h). One page is a fixed kFlowPageBytes
// block holding a variable number of varint-compressed RawRecords
// behind a small checksummed header, so a page file written through
// store::RecordFileWriter<FlowPageCodec> inherits the store's
// superblock validation and bounded-RSS streaming while packing ~2x
// more records per byte than the 57-byte wire layout.
//
// Parsing is defensive, like the wire codec: a page is bytes read back
// from disk, so any inconsistency — bad magic or version, record count
// or payload length overrunning the page, checksum mismatch, non-zero
// padding after the payload, a record that does not decode — yields
// nullopt instead of garbage structs. encode∘parse is the identity on
// accepted pages (the compression is canonical: one byte sequence per
// record sequence), which is the fixpoint fuzz_flow_page pins.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netflow/record.h"

namespace cbwt::netflow {

/// Bytes per page, the fixed record size of spill files. 4 KiB aligns
/// pages with the mmap substrate's residency unit.
inline constexpr std::size_t kFlowPageBytes = 4096;

/// Page format version carried in every header; bump on layout change.
inline constexpr std::uint8_t kFlowPageVersion = 1;

/// Header layout (big-endian, see flow_page.cpp): magic u16, version
/// u8, reserved u8 (zero), record count u16, payload bytes u16,
/// checksum u32 over the payload.
inline constexpr std::size_t kFlowPageHeaderBytes = 12;

/// One decoded page: a dense run of records. The page boundary carries
/// no meaning beyond "these records were spilled together" — the join
/// concatenates pages back into the partition's record stream.
struct FlowPage {
  std::vector<RawRecord> records;

  friend bool operator==(const FlowPage&, const FlowPage&) = default;
};

/// Exact compressed size of `record` inside a page payload.
[[nodiscard]] std::size_t compressed_record_size(const RawRecord& record) noexcept;

/// Serializes `page` into exactly kFlowPageBytes at `out` (payload
/// zero-padded). Requires the records to fit: header + sum of
/// compressed sizes <= kFlowPageBytes (FlowPageBuilder maintains that).
void encode_flow_page(const FlowPage& page, std::uint8_t* out);

/// Parses one page from exactly kFlowPageBytes. Rejects wrong spans,
/// malformed headers, geometry overruns, checksum mismatches, non-zero
/// padding and undecodable records.
[[nodiscard]] std::optional<FlowPage> parse_flow_page(
    std::span<const std::uint8_t> bytes);

/// Accumulates records into pages, closing a page when the next record
/// would overflow it. Usage: if (!builder.try_add(r)) { flush
/// builder.take(); builder.try_add(r); }. A single record always fits
/// in an empty page (the compressed form is bounded well under 4 KiB).
class FlowPageBuilder {
 public:
  /// Adds `record` if it still fits in the open page.
  [[nodiscard]] bool try_add(const RawRecord& record);

  [[nodiscard]] bool empty() const noexcept { return page_.records.empty(); }
  [[nodiscard]] std::size_t records() const noexcept { return page_.records.size(); }

  /// Hands back the open page and resets the builder.
  [[nodiscard]] FlowPage take() noexcept;

 private:
  FlowPage page_;
  std::size_t payload_bytes_ = 0;
};

/// One wire-ready page image: exactly kFlowPageBytes of encoded page,
/// as store::RecordFileWriter::append_encoded wants it. The parallel
/// spill pass moves vectors of these through the runtime's bounded
/// channels from producing shards to the ordered writer stage.
struct FlowPageImage {
  std::array<std::uint8_t, kFlowPageBytes> bytes;
};

/// The spill pass's allocation-free fast path: encodes records straight
/// into an owned page image as they arrive (flags, varints and
/// addresses are written in place — no RawRecord buffering, no
/// per-record allocation, no second encoding pass at append time), then
/// seal_into() stamps the header + zero padding and hands the finished
/// image off, leaving the builder's buffer immediately reusable for the
/// next page while the sealed one travels to the writer. For any record
/// sequence and page boundaries, the sealed bytes are identical to
/// encode_flow_page over the FlowPageBuilder path — both lower through
/// the same per-record encoder — which test_join_equivalence pins.
class FlowPageImageBuilder {
 public:
  /// Encodes `record` into the open image if it still fits.
  [[nodiscard]] bool try_add(const RawRecord& record);

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t records() const noexcept { return count_; }

  /// Stamps the header (magic, version, count, payload, checksum),
  /// zero-pads the tail, appends the sealed image to `out` and resets
  /// the builder. Requires a non-empty page.
  void seal_into(std::vector<FlowPageImage>& out);

 private:
  FlowPageImage image_{};
  std::size_t count_ = 0;
  std::size_t payload_bytes_ = 0;
};

/// store::RecordCodec adapter: spill files are record files whose fixed
/// "record" is one page. Duck-typed like WireCodec; kKind mirrors
/// store::RecordKind::NetflowPage (pinned by a static_assert in
/// netflow/join.cpp, where the two headers meet).
struct FlowPageCodec {
  using value_type = FlowPage;
  static constexpr std::size_t kRecordSize = kFlowPageBytes;
  static constexpr std::uint16_t kKind = 5;  // store::RecordKind::NetflowPage
  static void encode(const FlowPage& page, std::uint8_t* out) {
    encode_flow_page(page, out);
  }
  static std::optional<FlowPage> decode(const std::uint8_t* in) {
    return parse_flow_page({in, kFlowPageBytes});
  }
};

}  // namespace cbwt::netflow
