#include "netflow/sflow.h"

#include <cmath>

#include "net/domain.h"

namespace cbwt::netflow {

SflowExport generate_sflow_snapshot(const world::World& world,
                                    const dns::Resolver& resolver, const IspProfile& isp,
                                    const Snapshot& snapshot, const SflowConfig& config,
                                    util::Rng& rng) {
  SflowExport out;
  const double target = config.samples_per_subscriber_m * isp.subscribers_m *
                        isp.web_activity * snapshot.volume_factor * config.scale;
  out.tracking_intended = static_cast<std::uint64_t>(std::llround(target));
  out.samples.reserve(out.tracking_intended + out.tracking_intended / 4);

  const auto eyeball = world.addresses().eyeball_blocks().at(std::string(isp.country));
  const auto tracking = world.tracking_domain_ids();
  std::vector<double> tracking_weights;
  tracking_weights.reserve(tracking.size());
  for (const auto id : tracking) {
    tracking_weights.push_back(world.org(world.domain(id).org).popularity);
  }
  std::vector<world::DomainId> clean;
  std::vector<double> clean_weights;
  for (const auto& domain : world.domains()) {
    if (world.org(domain.org).role == world::OrgRole::CleanService) {
      clean.push_back(domain.id);
      clean_weights.push_back(world.org(domain.org).popularity);
    }
  }

  const auto emit = [&](world::DomainId domain_id) {
    const bool third_party_dns = rng.chance(isp.third_party_resolver_share);
    const auto answer = resolver.resolve_from(domain_id, isp.country, third_party_dns, rng);
    SflowSample sample;
    sample.src = eyeball.at(rng.next_below(1ULL << 20));
    sample.dst = answer.ip;
    sample.src_port = static_cast<std::uint16_t>(32768 + rng.next_below(28000));
    sample.true_domain = domain_id;
    const bool https = rng.chance(config.https_share);
    sample.dst_port = https ? 443 : 80;
    const bool quic = https && rng.chance(config.quic_share);
    sample.protocol = quic ? 17 : 6;
    const double visible = !https ? config.host_visible_http
                                  : (quic ? config.host_visible_quic
                                          : config.host_visible_tls);
    if (rng.chance(visible)) sample.visible_host = world.domain(domain_id).fqdn;
    out.samples.push_back(std::move(sample));
  };

  for (std::uint64_t i = 0; i < out.tracking_intended; ++i) {
    emit(tracking[util::sample_discrete(rng, tracking_weights)]);
  }
  const std::uint64_t background = out.tracking_intended / 4;
  for (std::uint64_t i = 0; i < background && !clean.empty(); ++i) {
    emit(clean[util::sample_discrete(rng, clean_weights)]);
  }
  return out;
}

SflowComparison compare_matchers(const world::World& world, const SflowExport& exported,
                                 const std::vector<std::string>& tracking_registrables,
                                 const TrackerIpIndex& trackers) {
  SflowComparison comparison;
  for (const auto& sample : exported.samples) {
    const bool truly_tracking =
        world.org(world.domain(sample.true_domain).org).role !=
        world::OrgRole::CleanService;

    bool host_hit = false;
    if (!sample.visible_host.empty()) {
      const auto registrable = net::registrable_domain(sample.visible_host);
      for (const auto& candidate : tracking_registrables) {
        if (registrable == candidate) {
          host_hit = true;
          break;
        }
      }
    }
    const bool ip_hit = trackers.contains(sample.dst);

    if (truly_tracking) {
      ++comparison.tracking_samples;
      comparison.matched_by_host += host_hit ? 1 : 0;
      comparison.matched_by_ip += ip_hit ? 1 : 0;
      comparison.matched_by_either += (host_hit || ip_hit) ? 1 : 0;
    } else {
      comparison.false_host_matches += host_hit ? 1 : 0;
      comparison.false_ip_matches += ip_hit ? 1 : 0;
    }
  }
  return comparison;
}

}  // namespace cbwt::netflow
