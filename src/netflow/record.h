// NetFlow v9-style sampled flow records (RFC 3954 field subset) and the
// user-IP anonymization step every collected record passes through: end
// user addresses are replaced by the ISP's country code before anything
// is stored or analyzed (§7.2 ethics).
#pragma once

#include <cstdint>
#include <string>

#include "net/ip.h"

namespace cbwt::netflow {

/// Direction of a flow relative to the ISP's subscribers.
enum class Direction : std::uint8_t { Outbound, Inbound };

/// One sampled, exported record as the router emits it.
struct RawRecord {
  std::uint32_t timestamp_s = 0;   ///< seconds into the snapshot day
  std::uint16_t router = 0;
  std::uint16_t interface = 0;
  bool internal_interface = true;  ///< user-facing edge (vs peering link)
  std::uint8_t protocol = 6;       ///< 6 TCP, 17 UDP (QUIC)
  net::IpAddress src;
  net::IpAddress dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t packets = 0;       ///< sampled packet count
  std::uint32_t bytes = 0;         ///< sampled byte count
  std::uint8_t tos = 0;

  friend bool operator==(const RawRecord&, const RawRecord&) = default;
};

/// The privacy-preserving form the study operates on: the subscriber
/// side is reduced to a country code, the remote side keeps its IP.
struct AnonRecord {
  std::string subscriber_country;
  net::IpAddress remote;
  std::uint16_t remote_port = 0;
  std::uint8_t protocol = 6;
  Direction direction = Direction::Outbound;
  std::uint32_t packets = 0;
  std::uint32_t bytes = 0;
};

/// Anonymizes a raw record given which side is the subscriber.
/// `subscriber_is_src` is decided by the collector from the interface
/// and address plan (ingress filtering guarantees spoof-free sources).
[[nodiscard]] AnonRecord anonymize(const RawRecord& record, bool subscriber_is_src,
                                   std::string subscriber_country);

}  // namespace cbwt::netflow
