// Store-backed NetFlow snapshots: the 57-byte wire codec doubles as the
// store's on-disk record format, so a snapshot too large for memory
// streams straight from the generator into a memory-mapped record file
// and back out through the collector in bounded chunks. Both directions
// reuse the deterministic in-memory code paths (generate_snapshot_stream
// with a writer sink; collect() per chunk with absolute base_index), so
// store-backed results are bit-identical to in-memory ones at any
// thread count.
#pragma once

#include <cstdint>
#include <string>

#include "dns/resolver.h"
#include "fault/retry.h"
#include "netflow/collector.h"
#include "netflow/generator.h"
#include "netflow/profile.h"
#include "netflow/wire.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"
#include "store/record_file.h"
#include "world/world.h"

namespace cbwt::netflow {

/// Reader over a store-backed snapshot file written by
/// generate_snapshot_to_store.
using SnapshotReader = store::RecordFileReader<WireCodec>;

/// Generates one ISP-day snapshot directly into the record file at
/// `path`, never holding more than one shard batch in memory. The
/// record sequence equals generate_snapshot_sharded's output exactly.
[[nodiscard]] SnapshotCounts generate_snapshot_to_store(
    const world::World& world, const dns::Resolver& resolver, const IspProfile& isp,
    const Snapshot& snapshot, const GeneratorConfig& config, std::uint64_t seed,
    runtime::ThreadPool* pool, const std::string& path,
    obs::Registry* registry = nullptr, const fault::FaultPlan* fault_plan = nullptr);

/// Runs the collector over a store-backed snapshot in chunks of
/// `chunk_records`, sharding each chunk across `pool`. Every drop
/// decision is keyed by absolute record index (chunk base + offset), so
/// the result is bit-identical to collect_sharded over the same records
/// in memory — for any chunk size and any pool size. Registry counters
/// and fault metrics match collect_sharded's.
[[nodiscard]] CollectionResult collect_store(
    const SnapshotReader& reader, const TrackerIpIndex& trackers,
    const IspProfile& isp, std::size_t chunk_records, runtime::ThreadPool* pool,
    obs::Registry* registry = nullptr, const fault::FaultPlan* fault_plan = nullptr);

}  // namespace cbwt::netflow
