// Flow-page codec. The payload is a dense run of varint-compressed
// records; the header carries geometry plus an FNV-1a checksum so a
// torn or bit-rotted page is rejected before any record decodes.
//
// The encoding is canonical — exactly one byte sequence per record
// sequence — which is what makes encode∘parse a fixpoint: varints are
// minimal-length LEB128 (a continuation byte whose payload would add
// only leading zeros is rejected), reserved flag bits must be zero,
// the declared payload length must be consumed exactly, and the
// padding after the payload must be all zero bytes.
#include "netflow/flow_page.h"

#include <cstring>

#include "store/bytes.h"
#include "util/contract.h"

namespace cbwt::netflow {
namespace {

/// Page magic ("flow page", arbitrary but fixed).
constexpr std::uint16_t kFlowPageMagic = 0xF10A;

/// Record flag bits. Bits 3..7 are reserved-zero.
constexpr std::uint8_t kFlagInternal = 0x01;
constexpr std::uint8_t kFlagSrcV6 = 0x02;
constexpr std::uint8_t kFlagDstV6 = 0x04;
constexpr std::uint8_t kFlagReservedMask = 0xF8;

/// Bytes a minimal LEB128 encoding of `value` occupies (1..5 for u32).
[[nodiscard]] constexpr std::size_t varint_size(std::uint32_t value) noexcept {
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

void put_varint(std::uint8_t*& out, std::uint32_t value) noexcept {
  while (value >= 0x80) {
    *out++ = static_cast<std::uint8_t>(value | 0x80U);
    value >>= 7;
  }
  *out++ = static_cast<std::uint8_t>(value);
}

/// Cursor over the payload: every read checks the remaining length, so
/// a record that overruns the declared payload is caught in place.
struct Reader {
  const std::uint8_t* cursor;
  const std::uint8_t* end;

  [[nodiscard]] bool take_u8(std::uint8_t& out) noexcept {
    if (cursor == end) return false;
    out = *cursor++;
    return true;
  }

  /// Minimal-length LEB128 with a field-width cap: a u16 field may use
  /// at most 3 bytes, a u32 at most 5, and the final byte's payload
  /// must not overflow the field or be a redundant zero continuation.
  [[nodiscard]] bool take_varint(std::uint32_t& out, std::uint32_t max) noexcept {
    std::uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
      std::uint8_t byte = 0;
      if (!take_u8(byte)) return false;
      value |= std::uint64_t{byte & 0x7FU} << shift;
      if ((byte & 0x80U) == 0) {
        // Canonicality: a multi-byte varint must not end in a zero
        // byte (that zero adds nothing and shorter encodings exist).
        if (shift != 0 && byte == 0) return false;
        break;
      }
      shift += 7;
      if (shift >= 35) return false;  // five continuation bytes cannot happen for u32
    }
    if (value > max) return false;
    out = static_cast<std::uint32_t>(value);
    return true;
  }

  [[nodiscard]] bool take_address(bool is_v6, net::IpAddress& out) noexcept {
    if (is_v6) {
      if (end - cursor < 16) return false;
      out = net::IpAddress::v6(store::get_u64(cursor), store::get_u64(cursor + 8));
      cursor += 16;
    } else {
      if (end - cursor < 4) return false;
      out = net::IpAddress::v4(store::get_u32(cursor));
      cursor += 4;
    }
    return true;
  }
};

void put_address(std::uint8_t*& out, const net::IpAddress& ip) noexcept {
  if (ip.is_v4()) {
    store::put_u32(out, ip.v4_value());
    out += 4;
  } else {
    store::put_u64(out, ip.hi());
    store::put_u64(out + 8, ip.lo());
    out += 16;
  }
}

[[nodiscard]] std::uint32_t payload_checksum(const std::uint8_t* payload,
                                             std::size_t length) noexcept {
  return static_cast<std::uint32_t>(store::fnv1a({payload, length}));
}

/// Encodes one record at `cursor` (the caller guarantees fit). The
/// single source of truth both page encoders lower through — the
/// canonical encoding lives here once, so the batch encoder
/// (encode_flow_page) and the in-place builder (FlowPageImageBuilder)
/// cannot drift apart.
void encode_record_at(std::uint8_t*& cursor, const RawRecord& record) noexcept {
  std::uint8_t flags = 0;
  if (record.internal_interface) flags |= kFlagInternal;
  if (!record.src.is_v4()) flags |= kFlagSrcV6;
  if (!record.dst.is_v4()) flags |= kFlagDstV6;
  *cursor++ = flags;
  put_varint(cursor, record.timestamp_s);
  put_varint(cursor, record.router);
  put_varint(cursor, record.interface);
  *cursor++ = record.protocol;
  put_address(cursor, record.src);
  put_address(cursor, record.dst);
  put_varint(cursor, record.src_port);
  put_varint(cursor, record.dst_port);
  put_varint(cursor, record.packets);
  put_varint(cursor, record.bytes);
  *cursor++ = record.tos;
}

/// Stamps the page header and zero-pads the tail over an already
/// encoded payload of `payload_bytes` holding `records` records.
void seal_page(std::uint8_t* out, std::size_t records,
               std::size_t payload_bytes) noexcept {
  store::put_u16(out, kFlowPageMagic);
  out[2] = kFlowPageVersion;
  out[3] = 0;
  store::put_u16(out + 4, static_cast<std::uint16_t>(records));
  store::put_u16(out + 6, static_cast<std::uint16_t>(payload_bytes));
  store::put_u32(out + 8, payload_checksum(out + kFlowPageHeaderBytes, payload_bytes));
  std::memset(out + kFlowPageHeaderBytes + payload_bytes, 0,
              kFlowPageBytes - kFlowPageHeaderBytes - payload_bytes);
}

}  // namespace

std::size_t compressed_record_size(const RawRecord& record) noexcept {
  std::size_t size = 1;  // flags
  size += varint_size(record.timestamp_s);
  size += varint_size(record.router);
  size += varint_size(record.interface);
  size += 1;  // protocol
  size += record.src.is_v4() ? 4 : 16;
  size += record.dst.is_v4() ? 4 : 16;
  size += varint_size(record.src_port);
  size += varint_size(record.dst_port);
  size += varint_size(record.packets);
  size += varint_size(record.bytes);
  size += 1;  // tos
  return size;
}

void encode_flow_page(const FlowPage& page, std::uint8_t* out) {
  CBWT_EXPECTS(page.records.size() <= 0xFFFF);
  std::uint8_t* cursor = out + kFlowPageHeaderBytes;
  for (const RawRecord& record : page.records) encode_record_at(cursor, record);
  const auto payload_bytes = static_cast<std::size_t>(cursor - out) - kFlowPageHeaderBytes;
  CBWT_EXPECTS(kFlowPageHeaderBytes + payload_bytes <= kFlowPageBytes);
  seal_page(out, page.records.size(), payload_bytes);
}

std::optional<FlowPage> parse_flow_page(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kFlowPageBytes) return std::nullopt;
  const std::uint8_t* data = bytes.data();
  if (store::get_u16(data) != kFlowPageMagic) return std::nullopt;
  if (data[2] != kFlowPageVersion) return std::nullopt;
  if (data[3] != 0) return std::nullopt;
  const std::uint16_t record_count = store::get_u16(data + 4);
  const std::uint16_t payload_bytes = store::get_u16(data + 6);
  if (kFlowPageHeaderBytes + std::size_t{payload_bytes} > kFlowPageBytes) {
    return std::nullopt;
  }
  if (store::get_u32(data + 8) !=
      payload_checksum(data + kFlowPageHeaderBytes, payload_bytes)) {
    return std::nullopt;
  }

  Reader reader{data + kFlowPageHeaderBytes,
                data + kFlowPageHeaderBytes + payload_bytes};
  FlowPage page;
  page.records.reserve(record_count);
  for (std::uint16_t i = 0; i < record_count; ++i) {
    RawRecord record;
    std::uint8_t flags = 0;
    if (!reader.take_u8(flags)) return std::nullopt;
    if ((flags & kFlagReservedMask) != 0) return std::nullopt;
    record.internal_interface = (flags & kFlagInternal) != 0;
    std::uint32_t value = 0;
    if (!reader.take_varint(value, 0xFFFFFFFFU)) return std::nullopt;
    record.timestamp_s = value;
    if (!reader.take_varint(value, 0xFFFFU)) return std::nullopt;
    record.router = static_cast<std::uint16_t>(value);
    if (!reader.take_varint(value, 0xFFFFU)) return std::nullopt;
    record.interface = static_cast<std::uint16_t>(value);
    if (!reader.take_u8(record.protocol)) return std::nullopt;
    if (!reader.take_address((flags & kFlagSrcV6) != 0, record.src)) return std::nullopt;
    if (!reader.take_address((flags & kFlagDstV6) != 0, record.dst)) return std::nullopt;
    if (!reader.take_varint(value, 0xFFFFU)) return std::nullopt;
    record.src_port = static_cast<std::uint16_t>(value);
    if (!reader.take_varint(value, 0xFFFFU)) return std::nullopt;
    record.dst_port = static_cast<std::uint16_t>(value);
    if (!reader.take_varint(value, 0xFFFFFFFFU)) return std::nullopt;
    record.packets = value;
    if (!reader.take_varint(value, 0xFFFFFFFFU)) return std::nullopt;
    record.bytes = value;
    if (!reader.take_u8(record.tos)) return std::nullopt;
    page.records.push_back(record);
  }
  if (reader.cursor != reader.end) return std::nullopt;  // undeclared trailing payload
  for (const std::uint8_t* pad = reader.end; pad != data + kFlowPageBytes; ++pad) {
    if (*pad != 0) return std::nullopt;
  }
  return page;
}

bool FlowPageBuilder::try_add(const RawRecord& record) {
  const std::size_t size = compressed_record_size(record);
  if (kFlowPageHeaderBytes + payload_bytes_ + size > kFlowPageBytes) return false;
  if (page_.records.size() >= 0xFFFF) return false;
  page_.records.push_back(record);
  payload_bytes_ += size;
  return true;
}

FlowPage FlowPageBuilder::take() noexcept {
  FlowPage page = std::move(page_);
  page_ = FlowPage{};
  payload_bytes_ = 0;
  return page;
}

bool FlowPageImageBuilder::try_add(const RawRecord& record) {
  const std::size_t size = compressed_record_size(record);
  if (kFlowPageHeaderBytes + payload_bytes_ + size > kFlowPageBytes) return false;
  if (count_ >= 0xFFFF) return false;
  std::uint8_t* cursor = image_.bytes.data() + kFlowPageHeaderBytes + payload_bytes_;
  encode_record_at(cursor, record);
  CBWT_ASSERT(cursor ==
              image_.bytes.data() + kFlowPageHeaderBytes + payload_bytes_ + size);
  payload_bytes_ += size;
  ++count_;
  return true;
}

void FlowPageImageBuilder::seal_into(std::vector<FlowPageImage>& out) {
  CBWT_EXPECTS(count_ > 0);
  seal_page(image_.bytes.data(), count_, payload_bytes_);
  out.push_back(image_);
  count_ = 0;
  payload_bytes_ = 0;
}

}  // namespace cbwt::netflow
