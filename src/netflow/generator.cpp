#include "netflow/generator.h"

#include <cmath>

#include "util/contract.h"

namespace cbwt::netflow {

AnonRecord anonymize(const RawRecord& record, bool subscriber_is_src,
                     std::string subscriber_country) {
  // Anonymization is the ethics boundary (§7.2): a record without a
  // subscriber country would leak through analysis unattributed.
  CBWT_EXPECTS(!subscriber_country.empty());
  AnonRecord anon;
  anon.subscriber_country = std::move(subscriber_country);
  anon.remote = subscriber_is_src ? record.dst : record.src;
  anon.remote_port = subscriber_is_src ? record.dst_port : record.src_port;
  anon.protocol = record.protocol;
  anon.direction = subscriber_is_src ? Direction::Outbound : Direction::Inbound;
  anon.packets = record.packets;
  anon.bytes = record.bytes;
  // The subscriber address must not survive into the anonymized form.
  CBWT_ENSURES(anon.remote == (subscriber_is_src ? record.dst : record.src));
  return anon;
}

namespace {

/// Ephemeral client port.
std::uint16_t client_port(util::Rng& rng) {
  return static_cast<std::uint16_t>(32768 + rng.next_below(28000));
}

RawRecord base_record(const GeneratorConfig& config, const net::IpAddress& subscriber,
                      const net::IpAddress& remote, util::Rng& rng) {
  RawRecord record;
  record.timestamp_s = static_cast<std::uint32_t>(rng.next_below(86400));
  record.router = static_cast<std::uint16_t>(rng.next_below(config.routers));
  record.interface = static_cast<std::uint16_t>(rng.next_below(8));
  record.internal_interface = true;
  const bool https = rng.chance(config.https_share);
  record.dst_port = https ? 443 : 80;
  record.protocol = (https && rng.chance(config.quic_share)) ? 17 : 6;
  record.src = subscriber;
  record.dst = remote;
  record.src_port = client_port(rng);
  record.packets = 1 + static_cast<std::uint32_t>(rng.next_below(40));
  record.bytes = record.packets * (60 + static_cast<std::uint32_t>(rng.next_below(1200)));
  return record;
}

}  // namespace

SnapshotExport generate_snapshot(const world::World& world, const dns::Resolver& resolver,
                                 const IspProfile& isp, const Snapshot& snapshot,
                                 const GeneratorConfig& config, util::Rng& rng) {
  SnapshotExport out;

  const double tracking_target = config.flows_per_subscriber_m * isp.subscribers_m *
                                 isp.web_activity * snapshot.volume_factor * config.scale;
  out.tracking_intended = static_cast<std::uint64_t>(std::llround(tracking_target));
  out.background_intended = static_cast<std::uint64_t>(
      std::llround(tracking_target * config.background_ratio));
  out.records.reserve(out.tracking_intended + out.background_intended);

  // Subscriber addresses come from the ISP country's eyeball block; the
  // exact address is irrelevant post-anonymization, so a random offset
  // inside the block is enough.
  const auto eyeball =
      world.addresses().eyeball_blocks().at(std::string(isp.country));

  // Popularity-weighted tracking domains (per-domain DNS then applies the
  // org's policy with the subscriber's resolver situation).
  const auto tracking = world.tracking_domain_ids();
  std::vector<double> tracking_weights;
  tracking_weights.reserve(tracking.size());
  for (const auto id : tracking) {
    tracking_weights.push_back(world.org(world.domain(id).org).popularity);
  }
  // Clean third-party services make up the background web flows.
  std::vector<world::DomainId> clean;
  std::vector<double> clean_weights;
  for (const auto& domain : world.domains()) {
    if (world.org(domain.org).role == world::OrgRole::CleanService) {
      clean.push_back(domain.id);
      clean_weights.push_back(world.org(domain.org).popularity);
    }
  }

  const auto subscriber_ip = [&] {
    return eyeball.at(rng.next_below(1ULL << 20));
  };

  const auto emit = [&](world::DomainId domain_id) {
    const bool third_party_dns = rng.chance(isp.third_party_resolver_share);
    const auto answer = resolver.resolve_from(domain_id, isp.country, third_party_dns, rng);
    out.records.push_back(base_record(config, subscriber_ip(), answer.ip, rng));
  };

  for (std::uint64_t i = 0; i < out.tracking_intended; ++i) {
    emit(tracking[util::sample_discrete(rng, tracking_weights)]);
  }
  for (std::uint64_t i = 0; i < out.background_intended && !clean.empty(); ++i) {
    emit(clean[util::sample_discrete(rng, clean_weights)]);
  }

  // A sprinkle of peering-link records the collector must filter out
  // (only internal edge routers carry user traffic, §7.2).
  const std::uint64_t peering = out.records.size() / 50;
  for (std::uint64_t i = 0; i < peering; ++i) {
    RawRecord record = base_record(config, subscriber_ip(), subscriber_ip(), rng);
    record.internal_interface = false;
    out.records.push_back(record);
  }
  return out;
}

}  // namespace cbwt::netflow
