#include "netflow/generator.h"

#include <algorithm>
#include <cmath>

#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "runtime/parallel.h"
#include "util/contract.h"

namespace cbwt::netflow {

AnonRecord anonymize(const RawRecord& record, bool subscriber_is_src,
                     std::string subscriber_country) {
  // Anonymization is the ethics boundary (§7.2): a record without a
  // subscriber country would leak through analysis unattributed.
  CBWT_EXPECTS(!subscriber_country.empty());
  AnonRecord anon;
  anon.subscriber_country = std::move(subscriber_country);
  anon.remote = subscriber_is_src ? record.dst : record.src;
  anon.remote_port = subscriber_is_src ? record.dst_port : record.src_port;
  anon.protocol = record.protocol;
  anon.direction = subscriber_is_src ? Direction::Outbound : Direction::Inbound;
  anon.packets = record.packets;
  anon.bytes = record.bytes;
  // The subscriber address must not survive into the anonymized form.
  CBWT_ENSURES(anon.remote == (subscriber_is_src ? record.dst : record.src));
  return anon;
}

namespace {

/// Ephemeral client port.
std::uint16_t client_port(util::Rng& rng) {
  return static_cast<std::uint16_t>(32768 + rng.next_below(28000));
}

RawRecord base_record(const GeneratorConfig& config, const net::IpAddress& subscriber,
                      const net::IpAddress& remote, util::Rng& rng) {
  RawRecord record;
  record.timestamp_s = static_cast<std::uint32_t>(rng.next_below(86400));
  record.router = static_cast<std::uint16_t>(rng.next_below(config.routers));
  record.interface = static_cast<std::uint16_t>(rng.next_below(8));
  record.internal_interface = true;
  const bool https = rng.chance(config.https_share);
  record.dst_port = https ? 443 : 80;
  record.protocol = (https && rng.chance(config.quic_share)) ? 17 : 6;
  record.src = subscriber;
  record.dst = remote;
  record.src_port = client_port(rng);
  record.packets = 1 + static_cast<std::uint32_t>(rng.next_below(40));
  record.bytes = record.packets * (60 + static_cast<std::uint32_t>(rng.next_below(1200)));
  return record;
}

/// Read-only emission state shared by every shard of one snapshot.
struct EmissionContext {
  EmissionContext(const world::World& world, const IspProfile& isp_profile,
                  const GeneratorConfig& generator_config)
      : isp(isp_profile), config(generator_config),
        eyeball(world.addresses().eyeball_blocks().at(std::string(isp_profile.country))) {
    // Popularity-weighted tracking domains (per-domain DNS then applies
    // the org's policy with the subscriber's resolver situation).
    tracking = world.tracking_domain_ids();
    tracking_weights.reserve(tracking.size());
    for (const auto id : tracking) {
      tracking_weights.push_back(world.org(world.domain(id).org).popularity);
    }
    // Clean third-party services make up the background web flows.
    for (const auto& domain : world.domains()) {
      if (world.org(domain.org).role == world::OrgRole::CleanService) {
        clean.push_back(domain.id);
        clean_weights.push_back(world.org(domain.org).popularity);
      }
    }
  }

  /// Subscriber addresses come from the ISP country's eyeball block; the
  /// exact address is irrelevant post-anonymization, so a random offset
  /// inside the block is enough.
  [[nodiscard]] net::IpAddress subscriber_ip(util::Rng& rng) const {
    return eyeball.at(rng.next_below(1ULL << 20));
  }

  void emit(const dns::Resolver& resolver, world::DomainId domain_id, util::Rng& rng,
            std::vector<RawRecord>& out, fault::Retrier* retrier = nullptr,
            std::uint64_t key = 0) const {
    const bool third_party_dns = rng.chance(isp.third_party_resolver_share);
    if (retrier != nullptr && retrier->enabled()) {
      const auto origin = resolver.origin_for(isp.country, third_party_dns);
      const auto answer =
          resolver.resolve_with_faults(domain_id, origin, rng, *retrier, key);
      if (!answer) return;  // the subscriber's fetch failed: no flow exported
      out.push_back(base_record(config, subscriber_ip(rng), answer->ip, rng));
      return;
    }
    const auto answer = resolver.resolve_from(domain_id, isp.country, third_party_dns, rng);
    out.push_back(base_record(config, subscriber_ip(rng), answer.ip, rng));
  }

  void emit_tracking(const dns::Resolver& resolver, util::Rng& rng,
                     std::vector<RawRecord>& out, fault::Retrier* retrier = nullptr,
                     std::uint64_t key = 0) const {
    emit(resolver, tracking[util::sample_discrete(rng, tracking_weights)], rng, out,
         retrier, key);
  }

  void emit_background(const dns::Resolver& resolver, util::Rng& rng,
                       std::vector<RawRecord>& out, fault::Retrier* retrier = nullptr,
                       std::uint64_t key = 0) const {
    if (clean.empty()) return;
    emit(resolver, clean[util::sample_discrete(rng, clean_weights)], rng, out, retrier,
         key);
  }

  const IspProfile& isp;
  const GeneratorConfig& config;
  net::IpPrefix eyeball;
  std::vector<world::DomainId> tracking;
  std::vector<double> tracking_weights;
  std::vector<world::DomainId> clean;
  std::vector<double> clean_weights;
};

void intended_volumes(const IspProfile& isp, const Snapshot& snapshot,
                      const GeneratorConfig& config, SnapshotExport& out) {
  const double tracking_target = config.flows_per_subscriber_m * isp.subscribers_m *
                                 isp.web_activity * snapshot.volume_factor * config.scale;
  out.tracking_intended = static_cast<std::uint64_t>(std::llround(tracking_target));
  out.background_intended = static_cast<std::uint64_t>(
      std::llround(tracking_target * config.background_ratio));
}

// Per-stream RNG labels for the sharded path.
constexpr std::uint64_t kTrackingStream = 0x7F10;
constexpr std::uint64_t kBackgroundStream = 0x7F11;
constexpr std::uint64_t kPeeringStream = 0x7F12;

}  // namespace

SnapshotExport generate_snapshot(const world::World& world, const dns::Resolver& resolver,
                                 const IspProfile& isp, const Snapshot& snapshot,
                                 const GeneratorConfig& config, util::Rng& rng) {
  SnapshotExport out;
  intended_volumes(isp, snapshot, config, out);
  out.records.reserve(out.tracking_intended + out.background_intended);
  const EmissionContext context(world, isp, config);

  for (std::uint64_t i = 0; i < out.tracking_intended; ++i) {
    context.emit_tracking(resolver, rng, out.records);
  }
  for (std::uint64_t i = 0; i < out.background_intended; ++i) {
    context.emit_background(resolver, rng, out.records);
  }

  // A sprinkle of peering-link records the collector must filter out
  // (only internal edge routers carry user traffic, §7.2).
  const std::uint64_t peering = out.records.size() / 50;
  for (std::uint64_t i = 0; i < peering; ++i) {
    RawRecord record = base_record(config, context.subscriber_ip(rng),
                                   context.subscriber_ip(rng), rng);
    record.internal_interface = false;
    out.records.push_back(record);
  }
  return out;
}

SnapshotCounts generate_snapshot_stream(
    const world::World& world, const dns::Resolver& resolver, const IspProfile& isp,
    const Snapshot& snapshot, const GeneratorConfig& config, std::uint64_t seed,
    runtime::ThreadPool* pool,
    const std::function<void(std::span<const RawRecord>)>& sink,
    obs::Registry* registry, const fault::FaultPlan* fault_plan) {
  obs::ScopedSpan span(registry, "netflow/generate");
  SnapshotExport intended;
  intended_volumes(isp, snapshot, config, intended);
  SnapshotCounts counts;
  counts.tracking_intended = intended.tracking_intended;
  counts.background_intended = intended.background_intended;
  const EmissionContext context(world, isp, config);

  // Each stream (tracking, background) shards its record-index space;
  // shard outputs reach the sink in shard order, so the record sequence
  // is the same for any pool size.
  using Batch = std::vector<RawRecord>;
  runtime::ChannelStats channel_stats;
  // The merge hands each part straight to the sink; it runs in shard
  // order on the calling thread, so the accumulator itself stays empty.
  const auto deliver = [&](Batch& /*acc*/, Batch&& part) {
    counts.records += part.size();
    sink(std::span<const RawRecord>(part));
  };
  const auto stream = [&](std::uint64_t count, std::uint64_t label, auto emit_one) {
    runtime::sharded_reduce<Batch>(
        pool, count, {.channel_stats = &channel_stats},
        seed, label,
        [&](runtime::ShardRange range, std::size_t shard, util::Rng& rng) {
          obs::ScopedTrace trace(registry, "netflow/generate/shard", shard);
          Batch part;
          part.reserve(range.size());
          // One Retrier per shard: the breaker's call order follows the
          // stable shard plan, which the serial path replays inline in
          // shard order — identical trajectories at any pool size.
          fault::Retrier retrier(fault_plan, fault::sites::kDns, fault::RetryPolicy{},
                                 fault::BreakerPolicy{}, registry);
          for (std::size_t i = range.begin; i < range.end; ++i) {
            emit_one(rng, part, &retrier, util::mix64(label ^ i));
          }
          return part;
        },
        deliver);
  };
  stream(counts.tracking_intended, kTrackingStream,
         [&](util::Rng& rng, Batch& part, fault::Retrier* retrier, std::uint64_t key) {
           context.emit_tracking(resolver, rng, part, retrier, key);
         });
  stream(counts.background_intended, kBackgroundStream,
         [&](util::Rng& rng, Batch& part, fault::Retrier* retrier, std::uint64_t key) {
           context.emit_background(resolver, rng, part, retrier, key);
         });

  // Peering-link noise is ~2% of the volume; one serial shard suffices.
  // Batched to the sink so the streaming path never holds more than one
  // bounded buffer.
  const std::uint64_t peering = counts.records / 50;
  auto peering_rng = runtime::shard_rng(seed, kPeeringStream, 0);
  constexpr std::uint64_t kPeeringBatch = 64 * 1024;
  Batch peering_part;
  peering_part.reserve(static_cast<std::size_t>(std::min(peering, kPeeringBatch)));
  for (std::uint64_t i = 0; i < peering; ++i) {
    RawRecord record = base_record(config, context.subscriber_ip(peering_rng),
                                   context.subscriber_ip(peering_rng), peering_rng);
    record.internal_interface = false;
    peering_part.push_back(record);
    if (peering_part.size() == kPeeringBatch) {
      sink(std::span<const RawRecord>(peering_part));
      peering_part.clear();
    }
  }
  if (!peering_part.empty()) sink(std::span<const RawRecord>(peering_part));
  counts.records += peering;

  span.set_items(counts.records);
  if (registry != nullptr) {
    registry->counter("cbwt_netflow_records_generated_total").add(counts.records);
    registry->counter("cbwt_netflow_tracking_intended_total").add(counts.tracking_intended);
    registry->counter("cbwt_netflow_background_intended_total")
        .add(counts.background_intended);
    obs::record_channel_stats(registry, channel_stats);
  }
  return counts;
}

SnapshotExport generate_snapshot_sharded(const world::World& world,
                                         const dns::Resolver& resolver,
                                         const IspProfile& isp, const Snapshot& snapshot,
                                         const GeneratorConfig& config, std::uint64_t seed,
                                         runtime::ThreadPool* pool,
                                         obs::Registry* registry,
                                         const fault::FaultPlan* fault_plan) {
  SnapshotExport out;
  intended_volumes(isp, snapshot, config, out);
  out.records.reserve(out.tracking_intended + out.background_intended);
  const auto counts = generate_snapshot_stream(
      world, resolver, isp, snapshot, config, seed, pool,
      [&out](std::span<const RawRecord> batch) {
        out.records.insert(out.records.end(), batch.begin(), batch.end());
      },
      registry, fault_plan);
  out.tracking_intended = counts.tracking_intended;
  out.background_intended = counts.background_intended;
  CBWT_ENSURES(out.records.size() == counts.records);
  return out;
}

}  // namespace cbwt::netflow
