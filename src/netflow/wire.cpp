#include "netflow/wire.h"

#include "util/contract.h"

namespace cbwt::netflow {

namespace {

// Record layout, all multi-byte fields big-endian (network order):
//
//   offset size  field
//   0      4     timestamp_s
//   4      2     router
//   6      2     interface
//   8      1     flags (bit 0: internal_interface)
//   9      1     protocol
//   10     1     src address family tag (4 or 6)
//   11     16    src address, 128-bit (v4 occupies the low 32 bits)
//   27     1     dst address family tag
//   28     16    dst address
//   44     2     src_port
//   46     2     dst_port
//   48     4     packets
//   52     4     bytes
//   56     1     tos
//   ----- 57 bytes total

void put_u16(std::uint8_t* out, std::uint16_t value) {
  out[0] = static_cast<std::uint8_t>(value >> 8);
  out[1] = static_cast<std::uint8_t>(value);
}

void put_u32(std::uint8_t* out, std::uint32_t value) {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value);
}

void put_u64(std::uint8_t* out, std::uint64_t value) {
  put_u32(out, static_cast<std::uint32_t>(value >> 32));
  put_u32(out + 4, static_cast<std::uint32_t>(value));
}

void put_address(std::uint8_t* out, const net::IpAddress& ip) {
  out[0] = ip.is_v4() ? 4 : 6;
  put_u64(out + 1, ip.hi());
  put_u64(out + 9, ip.lo());
}

std::uint16_t get_u16(std::span<const std::uint8_t> bytes, std::size_t at) {
  CBWT_EXPECTS(at + 2 <= bytes.size());
  return static_cast<std::uint16_t>((bytes[at] << 8) | bytes[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  CBWT_EXPECTS(at + 4 <= bytes.size());
  return (std::uint32_t{bytes[at]} << 24) | (std::uint32_t{bytes[at + 1]} << 16) |
         (std::uint32_t{bytes[at + 2]} << 8) | std::uint32_t{bytes[at + 3]};
}

std::uint64_t get_u64(std::span<const std::uint8_t> bytes, std::size_t at) {
  return (std::uint64_t{get_u32(bytes, at)} << 32) | get_u32(bytes, at + 4);
}

std::optional<net::IpAddress> get_address(std::span<const std::uint8_t> bytes,
                                          std::size_t at) {
  const std::uint8_t family = bytes[at];
  const std::uint64_t hi = get_u64(bytes, at + 1);
  const std::uint64_t lo = get_u64(bytes, at + 9);
  if (family == 4) {
    // An IPv4 tag with bits above the low 32 set is a corrupt record,
    // not a representable address.
    if (hi != 0 || lo > 0xFFFFFFFFULL) return std::nullopt;
    return net::IpAddress::v4(static_cast<std::uint32_t>(lo));
  }
  if (family == 6) return net::IpAddress::v6(hi, lo);
  return std::nullopt;
}

}  // namespace

void encode_record_into(const RawRecord& record, std::uint8_t* out) {
  put_u32(out + 0, record.timestamp_s);
  put_u16(out + 4, record.router);
  put_u16(out + 6, record.interface);
  out[8] = record.internal_interface ? 1 : 0;
  out[9] = record.protocol;
  put_address(out + 10, record.src);
  put_address(out + 27, record.dst);
  put_u16(out + 44, record.src_port);
  put_u16(out + 46, record.dst_port);
  put_u32(out + 48, record.packets);
  put_u32(out + 52, record.bytes);
  out[56] = record.tos;
}

std::vector<std::uint8_t> encode_record(const RawRecord& record) {
  std::vector<std::uint8_t> out(kWireRecordSize);
  encode_record_into(record, out.data());
  return out;
}

std::vector<std::uint8_t> encode_packet(std::span<const RawRecord> records) {
  CBWT_EXPECTS(records.size() <= kWireMaxRecordsPerPacket);
  std::vector<std::uint8_t> out(kWireHeaderSize + records.size() * kWireRecordSize);
  put_u16(out.data(), kWireVersion);
  put_u16(out.data() + 2, static_cast<std::uint16_t>(records.size()));
  for (std::size_t i = 0; i < records.size(); ++i) {
    encode_record_into(records[i], out.data() + kWireHeaderSize + i * kWireRecordSize);
  }
  return out;
}

std::optional<RawRecord> parse_record(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kWireRecordSize) return std::nullopt;
  const std::uint8_t flags = bytes[8];
  if ((flags & ~std::uint8_t{1}) != 0) return std::nullopt;  // reserved bits
  RawRecord record;
  record.timestamp_s = get_u32(bytes, 0);
  record.router = get_u16(bytes, 4);
  record.interface = get_u16(bytes, 6);
  record.internal_interface = (flags & 1) != 0;
  record.protocol = bytes[9];
  const auto src = get_address(bytes, 10);
  if (!src) return std::nullopt;
  record.src = *src;
  const auto dst = get_address(bytes, 27);
  if (!dst) return std::nullopt;
  record.dst = *dst;
  record.src_port = get_u16(bytes, 44);
  record.dst_port = get_u16(bytes, 46);
  record.packets = get_u32(bytes, 48);
  record.bytes = get_u32(bytes, 52);
  record.tos = bytes[56];
  return record;
}

std::optional<std::vector<RawRecord>> parse_packet(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kWireHeaderSize) return std::nullopt;
  if (get_u16(bytes, 0) != kWireVersion) return std::nullopt;
  const std::uint16_t count = get_u16(bytes, 2);
  if (count > kWireMaxRecordsPerPacket) return std::nullopt;
  const std::size_t expected = kWireHeaderSize + std::size_t{count} * kWireRecordSize;
  if (bytes.size() != expected) return std::nullopt;  // truncated or trailing junk
  std::vector<RawRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto record =
        parse_record(bytes.subspan(kWireHeaderSize + i * kWireRecordSize, kWireRecordSize));
    if (!record) return std::nullopt;
    records.push_back(*record);
  }
  CBWT_ENSURES(records.size() == count);
  return records;
}

}  // namespace cbwt::netflow
