// Binary wire form for sampled flow records: a NetFlow v9-flavoured
// fixed layout (version + record count header, fixed-size records) that
// collectors would receive off the socket. The seed pipeline passed
// RawRecord structs around in memory; this codec is the boundary where
// untrusted router bytes become structs, so parsing is defensive: any
// malformed packet — truncated record, bad address family, overstated
// record count — yields nullopt instead of garbage structs.
#pragma once

#include <bit>
#include <climits>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netflow/record.h"

namespace cbwt::netflow {

// The codec assembles every multi-byte field from explicit byte shifts,
// so it emits network order on little- and big-endian hosts alike and
// never reinterprets a struct's in-memory bytes. These guards pin the
// two assumptions that reasoning rests on: octet bytes, and a host
// whose scalar endianness is one of the two shift-friendly orders
// (mixed-endian targets would need a real byte-swapping port).
static_assert(CHAR_BIT == 8, "netflow wire codec requires octet bytes");
static_assert(std::endian::native == std::endian::little ||
                  std::endian::native == std::endian::big,
              "netflow wire codec requires a little- or big-endian host");

/// Export-format version tag carried in every packet header.
inline constexpr std::uint16_t kWireVersion = 9;

/// Bytes per encoded record (fixed layout, see wire.cpp).
inline constexpr std::size_t kWireRecordSize = 57;

/// Bytes in the packet header (version + record count, both big-endian).
inline constexpr std::size_t kWireHeaderSize = 4;

/// Records a single packet may carry; bounds the decode allocation.
inline constexpr std::size_t kWireMaxRecordsPerPacket = 1024;

/// Serializes one record into its fixed 57-byte layout.
[[nodiscard]] std::vector<std::uint8_t> encode_record(const RawRecord& record);

/// Serializes one record into exactly kWireRecordSize bytes at `out`,
/// allocation-free — the hot path for store-backed snapshot export.
void encode_record_into(const RawRecord& record, std::uint8_t* out);

/// Serializes a header plus all records; `records.size()` must not
/// exceed kWireMaxRecordsPerPacket.
[[nodiscard]] std::vector<std::uint8_t> encode_packet(std::span<const RawRecord> records);

/// Decodes exactly one record from exactly kWireRecordSize bytes.
/// Rejects wrong sizes and malformed address-family tags.
[[nodiscard]] std::optional<RawRecord> parse_record(std::span<const std::uint8_t> bytes);

/// Decodes a full packet. Rejects short headers, unknown versions,
/// record counts that overrun the payload (the truncation class of
/// bug), counts above kWireMaxRecordsPerPacket, and trailing bytes.
[[nodiscard]] std::optional<std::vector<RawRecord>> parse_packet(
    std::span<const std::uint8_t> bytes);

/// store::RecordCodec adapter: the 57-byte wire layout doubles as the
/// store's first on-disk record format. Kept free of store includes —
/// the concept is duck-typed and kKind mirrors
/// store::RecordKind::NetflowWire (pinned by a static_assert where the
/// two headers meet, in netflow/snapshot_store.cpp).
struct WireCodec {
  using value_type = RawRecord;
  static constexpr std::size_t kRecordSize = kWireRecordSize;
  static constexpr std::uint16_t kKind = 1;  // store::RecordKind::NetflowWire
  static void encode(const RawRecord& record, std::uint8_t* out) {
    encode_record_into(record, out);
  }
  static std::optional<RawRecord> decode(const std::uint8_t* in) {
    return parse_record({in, kWireRecordSize});
  }
};

}  // namespace cbwt::netflow
