// Binary wire form for sampled flow records: a NetFlow v9-flavoured
// fixed layout (version + record count header, fixed-size records) that
// collectors would receive off the socket. The seed pipeline passed
// RawRecord structs around in memory; this codec is the boundary where
// untrusted router bytes become structs, so parsing is defensive: any
// malformed packet — truncated record, bad address family, overstated
// record count — yields nullopt instead of garbage structs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netflow/record.h"

namespace cbwt::netflow {

/// Export-format version tag carried in every packet header.
inline constexpr std::uint16_t kWireVersion = 9;

/// Bytes per encoded record (fixed layout, see wire.cpp).
inline constexpr std::size_t kWireRecordSize = 57;

/// Bytes in the packet header (version + record count, both big-endian).
inline constexpr std::size_t kWireHeaderSize = 4;

/// Records a single packet may carry; bounds the decode allocation.
inline constexpr std::size_t kWireMaxRecordsPerPacket = 1024;

/// Serializes one record into its fixed 57-byte layout.
[[nodiscard]] std::vector<std::uint8_t> encode_record(const RawRecord& record);

/// Serializes a header plus all records; `records.size()` must not
/// exceed kWireMaxRecordsPerPacket.
[[nodiscard]] std::vector<std::uint8_t> encode_packet(std::span<const RawRecord> records);

/// Decodes exactly one record from exactly kWireRecordSize bytes.
/// Rejects wrong sizes and malformed address-family tags.
[[nodiscard]] std::optional<RawRecord> parse_record(std::span<const std::uint8_t> bytes);

/// Decodes a full packet. Rejects short headers, unknown versions,
/// record counts that overrun the payload (the truncation class of
/// bug), counts above kWireMaxRecordsPerPacket, and trailing bytes.
[[nodiscard]] std::optional<std::vector<RawRecord>> parse_packet(
    std::span<const std::uint8_t> bytes);

}  // namespace cbwt::netflow
