// sFlow-style sampled packet export — the alternative passive vantage
// the paper weighs and rejects (§2.3): sFlow captures truncated packet
// headers, so a hostname (TLS SNI / HTTP Host) is sometimes visible, but
// only when the sampler happens to catch the right packet, and not at
// all for encrypted-transport flows. The comparison harness shows why
// the paper's IP-level NetFlow join — fed by the browser-extension IP
// list — beats hostname matching on coverage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dns/resolver.h"
#include "netflow/collector.h"
#include "netflow/profile.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::netflow {

/// One sampled, truncated packet header.
struct SflowSample {
  net::IpAddress src;
  net::IpAddress dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 443;
  std::uint8_t protocol = 6;
  /// Hostname recovered from the captured bytes: the TLS SNI or the
  /// plaintext HTTP Host header. Empty when the sampled packet was not a
  /// handshake/header packet, or the transport hides it.
  std::string visible_host;
  /// Ground truth for scoring (never consulted by the matchers).
  world::DomainId true_domain = 0;
};

struct SflowConfig {
  /// Samples to emit, expressed like the NetFlow generator's volumes.
  double scale = 1e-3;
  double samples_per_subscriber_m = 70.0e6;
  double https_share = 0.834;
  double quic_share = 0.12;
  /// Probability the sampler catches a packet exposing the hostname:
  /// high for plaintext HTTP (every request carries Host), moderate for
  /// TLS (only the ClientHello), low for QUIC (handshake largely hidden
  /// in 2017/18 gQUIC crypto).
  double host_visible_http = 0.95;
  double host_visible_tls = 0.45;
  double host_visible_quic = 0.08;
};

struct SflowExport {
  std::vector<SflowSample> samples;
  std::uint64_t tracking_intended = 0;
};

/// Emits one ISP-day of sFlow samples over the same traffic model as the
/// NetFlow generator.
[[nodiscard]] SflowExport generate_sflow_snapshot(const world::World& world,
                                                  const dns::Resolver& resolver,
                                                  const IspProfile& isp,
                                                  const Snapshot& snapshot,
                                                  const SflowConfig& config,
                                                  util::Rng& rng);

/// How each matching strategy did against the ground truth.
struct SflowComparison {
  std::uint64_t tracking_samples = 0;   ///< truly-tracking samples seen
  std::uint64_t matched_by_host = 0;    ///< hostname-suffix match hits
  std::uint64_t matched_by_ip = 0;      ///< IP-set join hits
  std::uint64_t matched_by_either = 0;
  std::uint64_t false_host_matches = 0; ///< non-tracking flagged by host
  std::uint64_t false_ip_matches = 0;

  [[nodiscard]] double host_recall() const noexcept {
    return tracking_samples == 0 ? 0.0
                                 : static_cast<double>(matched_by_host) /
                                       static_cast<double>(tracking_samples);
  }
  [[nodiscard]] double ip_recall() const noexcept {
    return tracking_samples == 0 ? 0.0
                                 : static_cast<double>(matched_by_ip) /
                                       static_cast<double>(tracking_samples);
  }
};

/// Scores hostname matching (against the tracking registrable-domain
/// list) vs IP matching (against `trackers`) on an sFlow export.
[[nodiscard]] SflowComparison compare_matchers(
    const world::World& world, const SflowExport& exported,
    const std::vector<std::string>& tracking_registrables,
    const TrackerIpIndex& trackers);

}  // namespace cbwt::netflow
