// Profiles of the four European ISPs the paper analyzes (Table 7), plus
// the knobs that drive their synthetic NetFlow streams. Subscriber
// counts are real (published); everything else models the structural
// differences the paper leans on — mobile users sit behind the ISP's own
// resolver, broadband users increasingly use third-party DNS.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace cbwt::netflow {

enum class AccessType : std::uint8_t { Broadband, Mobile, Mixed };

[[nodiscard]] std::string_view to_string(AccessType access) noexcept;

struct IspProfile {
  std::string_view name;       ///< "DE-Broadband", ...
  std::string_view country;    ///< ISO alpha-2 of the operating country
  AccessType access = AccessType::Broadband;
  double subscribers_m = 0.0;  ///< Table 7 demographics
  /// Relative per-subscriber browser-driven web activity; mobile is lower
  /// because app traffic bypasses the browser (§7.3).
  double web_activity = 1.0;
  /// Share of subscribers whose DNS goes to a third-party resolver.
  double third_party_resolver_share = 0.30;
};

/// The four ISPs of Table 7.
[[nodiscard]] std::span<const IspProfile> default_isps() noexcept;

/// The four daily snapshots of Table 8, as days since Sep 1, 2017.
struct Snapshot {
  std::int32_t day = 0;
  std::string_view label;
  /// Day-to-day volume drift (the paper's totals move +-15% across dates).
  double volume_factor = 1.0;
};

[[nodiscard]] std::span<const Snapshot> default_snapshots() noexcept;

}  // namespace cbwt::netflow
