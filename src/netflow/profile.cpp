#include "netflow/profile.h"

#include <array>

namespace cbwt::netflow {

namespace {

// web_activity is calibrated so that paper-scale sampled volumes match
// Table 8 (flows ~= 70e6 * subscribers_m * web_activity per day):
// DE-Broadband ~1.06e9, DE-Mobile ~7.0e7, PL ~1.4e7, HU ~4.3e7.
constexpr std::array<IspProfile, 4> kIsps = {{
    {"DE-Broadband", "DE", AccessType::Broadband, 15.0, 1.000, 0.30},
    {"DE-Mobile", "DE", AccessType::Mobile, 40.0, 0.025, 0.05},
    {"PL", "PL", AccessType::Mixed, 11.0, 0.018, 0.22},
    {"HU", "HU", AccessType::Mobile, 6.0, 0.103, 0.08},
}};

constexpr std::array<Snapshot, 4> kSnapshots = {{
    {68, "Nov 8", 1.00},
    {215, "April 4", 1.13},
    {257, "May 16", 1.04},
    {292, "June 20", 0.91},
}};

}  // namespace

std::string_view to_string(AccessType access) noexcept {
  switch (access) {
    case AccessType::Broadband: return "broadband";
    case AccessType::Mobile: return "mobile";
    case AccessType::Mixed: return "mixed";
  }
  return "?";
}

std::span<const IspProfile> default_isps() noexcept { return kIsps; }

std::span<const Snapshot> default_snapshots() noexcept { return kSnapshots; }

}  // namespace cbwt::netflow
