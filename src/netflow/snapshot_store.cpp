#include "netflow/snapshot_store.h"

#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "runtime/parallel.h"
#include "store/superblock.h"
#include "util/contract.h"

namespace cbwt::netflow {

// The duck-typed codec promises to mirror the store's kind registry;
// this is the one translation unit that sees both headers, so it pins
// the contract.
static_assert(WireCodec::kKind ==
                  static_cast<std::uint16_t>(store::RecordKind::NetflowWire),
              "WireCodec::kKind must track store::RecordKind::NetflowWire");
static_assert(WireCodec::kRecordSize == kWireRecordSize);

SnapshotCounts generate_snapshot_to_store(
    const world::World& world, const dns::Resolver& resolver, const IspProfile& isp,
    const Snapshot& snapshot, const GeneratorConfig& config, std::uint64_t seed,
    runtime::ThreadPool* pool, const std::string& path, obs::Registry* registry,
    const fault::FaultPlan* fault_plan) {
  store::RecordFileWriter<WireCodec> writer(path, registry);
  const auto counts = generate_snapshot_stream(
      world, resolver, isp, snapshot, config, seed, pool,
      [&writer](std::span<const RawRecord> batch) { writer.append(batch); },
      registry, fault_plan);
  writer.finalize();
  CBWT_ENSURES(writer.size() == counts.records);
  return counts;
}

CollectionResult collect_store(const SnapshotReader& reader,
                               const TrackerIpIndex& trackers, const IspProfile& isp,
                               std::size_t chunk_records, runtime::ThreadPool* pool,
                               obs::Registry* registry,
                               const fault::FaultPlan* fault_plan) {
  obs::ScopedSpan span(registry, "netflow/collect");
  runtime::ChannelStats channel_stats;
  CollectionResult result;
  reader.for_each_chunk(chunk_records, [&](std::span<const RawRecord> chunk,
                                           std::uint64_t chunk_base) {
    obs::ScopedTrace chunk_trace(registry, "netflow/store/read_chunk", chunk_base);
    // Same shard/reduce discipline as collect_sharded, with every drop
    // decision anchored to the record's absolute index in the file —
    // chunking and sharding both disappear from the result.
    merge_collection(
        result,
        runtime::sharded_reduce<CollectionResult>(
            pool, chunk.size(), {.channel_stats = &channel_stats},
            /*seed=*/0, /*stage_label=*/0xC011EC7,
            [&](runtime::ShardRange range, std::size_t shard, util::Rng& /*rng*/) {
              obs::ScopedTrace trace(registry, "netflow/collect/shard", shard);
              return collect(chunk.subspan(range.begin, range.size()), trackers, isp,
                             {.fault_plan = fault_plan,
                              .base_index = chunk_base + range.begin});
            },
            merge_collection));
  });
  CBWT_ENSURES(result.matched_records <= result.internal_records);
  CBWT_ENSURES(result.internal_records <= result.records_seen);
  CBWT_ENSURES(result.records_seen + result.dropped_records == reader.size());

  span.set_items(result.records_seen);
  if (registry != nullptr) {
    registry->counter("cbwt_netflow_records_collected_total").add(result.records_seen);
    registry->counter("cbwt_netflow_internal_total").add(result.internal_records);
    registry->counter("cbwt_netflow_matched_total").add(result.matched_records);
    obs::record_channel_stats(registry, channel_stats);
  }
  if (fault_plan != nullptr &&
      fault_plan->site(fault::sites::kNetflowExport).rates.any()) {
    const auto metrics =
        fault::SiteMetrics::resolve(registry, fault::sites::kNetflowExport);
    if (metrics.injected != nullptr && result.dropped_records > 0) {
      metrics.injected->add(result.dropped_records);
    }
    metrics.count_degraded(result.dropped_records);
  }
  return result;
}

}  // namespace cbwt::netflow
