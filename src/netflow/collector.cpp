#include "netflow/collector.h"

#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "runtime/parallel.h"
#include "util/contract.h"

namespace cbwt::netflow {

void TrackerIpIndex::add(const net::IpAddress& ip) { ips_.insert(ip); }

TrackerIpIndex TrackerIpIndex::from_pdns(const pdns::Store& store, pdns::Day day) {
  TrackerIpIndex index;
  for (const auto& ip : store.all_ips()) {
    for (const auto* record : store.reverse(ip)) {
      if (record->first_seen <= day && day <= record->last_seen) {
        index.add(ip);
        break;
      }
    }
  }
  return index;
}

TrackerIpIndex TrackerIpIndex::from_pdns_all_time(const pdns::Store& store) {
  TrackerIpIndex index;
  for (const auto& ip : store.all_ips()) index.add(ip);
  return index;
}

bool TrackerIpIndex::contains(const net::IpAddress& ip) const noexcept {
  return ips_.contains(ip);
}

std::vector<analysis::Flow> CollectionResult::flows(std::string origin_country) const {
  std::vector<analysis::Flow> out;
  out.reserve(per_ip.size());
  for (const auto& [ip, count] : per_ip) {
    analysis::Flow flow;
    flow.origin_country = origin_country;
    flow.destination = ip;
    flow.weight = count;
    out.push_back(std::move(flow));
  }
  return out;
}

void merge_collection(CollectionResult& acc, CollectionResult&& part) {
  acc.records_seen += part.records_seen;
  acc.internal_records += part.internal_records;
  acc.matched_records += part.matched_records;
  acc.https_records += part.https_records;
  acc.udp_records += part.udp_records;
  acc.dropped_records += part.dropped_records;
  for (const auto& [ip, count] : part.per_ip) acc.per_ip[ip] += count;
}

CollectionResult collect(std::span<const RawRecord> records, const TrackerIpIndex& trackers,
                         const IspProfile& isp, const CollectOptions& options) {
  CollectionResult result;
  const fault::Site export_site =
      options.fault_plan != nullptr
          ? options.fault_plan->site(fault::sites::kNetflowExport)
          : fault::Site{};
  const bool inject = export_site.rates.any();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    if (inject) {
      // One export datagram, one stateless drop decision on its absolute
      // index. Slow/stale exports still arrive (the collector is not
      // latency-sensitive); only Timeout/Error lose the record.
      const fault::FaultKind kind =
          fault::decide(options.fault_plan->seed, export_site,
                        options.base_index + i, /*attempt=*/0);
      if (kind == fault::FaultKind::Timeout || kind == fault::FaultKind::Error) {
        ++result.dropped_records;
        continue;
      }
    }
    ++result.records_seen;
    if (!record.internal_interface) continue;  // peering links carry no user edge
    ++result.internal_records;

    // Ingress filtering (BCP38) holds, so the subscriber side is simply
    // the side inside the ISP; the generator puts subscribers in src for
    // outbound flows, but we check both sides as the paper does.
    const bool dst_is_tracker = trackers.contains(record.dst);
    const bool src_is_tracker = trackers.contains(record.src);
    if (!dst_is_tracker && !src_is_tracker) continue;

    const bool subscriber_is_src = dst_is_tracker;
    const AnonRecord anon =
        anonymize(record, subscriber_is_src, std::string(isp.country));
    ++result.matched_records;
    if (anon.remote_port == 443) ++result.https_records;
    if (anon.protocol == 17) ++result.udp_records;
    ++result.per_ip[anon.remote];
  }
  // Counter funnel: every matched record is internal, every internal
  // record was seen. A violation means a counting branch was skipped.
  CBWT_ENSURES(result.matched_records <= result.internal_records);
  CBWT_ENSURES(result.internal_records <= result.records_seen);
  return result;
}

CollectionResult collect_sharded(std::span<const RawRecord> records,
                                 const TrackerIpIndex& trackers, const IspProfile& isp,
                                 runtime::ThreadPool* pool, obs::Registry* registry,
                                 const fault::FaultPlan* fault_plan) {
  obs::ScopedSpan span(registry, "netflow/collect");
  runtime::ChannelStats channel_stats;
  auto result = runtime::sharded_reduce<CollectionResult>(
      pool, records.size(), {.channel_stats = &channel_stats},
      /*seed=*/0, /*stage_label=*/0xC011EC7,
      [&](runtime::ShardRange range, std::size_t shard, util::Rng& /*rng*/) {
        obs::ScopedTrace trace(registry, "netflow/collect/shard", shard);
        // base_index anchors the shard's drop decisions to the absolute
        // record index, keeping them shard-plan-independent.
        return collect(records.subspan(range.begin, range.size()), trackers, isp,
                       {.fault_plan = fault_plan, .base_index = range.begin});
      },
      merge_collection);
  CBWT_ENSURES(result.matched_records <= result.internal_records);
  CBWT_ENSURES(result.internal_records <= result.records_seen);
  CBWT_ENSURES(result.records_seen + result.dropped_records == records.size());

  span.set_items(result.records_seen);
  if (registry != nullptr) {
    registry->counter("cbwt_netflow_records_collected_total").add(result.records_seen);
    registry->counter("cbwt_netflow_internal_total").add(result.internal_records);
    registry->counter("cbwt_netflow_matched_total").add(result.matched_records);
    obs::record_channel_stats(registry, channel_stats);
  }
  if (fault_plan != nullptr &&
      fault_plan->site(fault::sites::kNetflowExport).rates.any()) {
    const auto metrics =
        fault::SiteMetrics::resolve(registry, fault::sites::kNetflowExport);
    if (metrics.injected != nullptr && result.dropped_records > 0) {
      metrics.injected->add(result.dropped_records);
    }
    metrics.count_degraded(result.dropped_records);
  }
  return result;
}

}  // namespace cbwt::netflow
