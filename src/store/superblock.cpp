#include "store/superblock.h"

#include <algorithm>

#include "store/bytes.h"
#include "util/contract.h"

namespace cbwt::store {

void encode_superblock(const Superblock& block, std::span<std::uint8_t> out) {
  CBWT_EXPECTS(out.size() >= kSuperblockSize);
  std::fill_n(out.begin(), kSuperblockSize, std::uint8_t{0});
  std::copy(kMagic.begin(), kMagic.end(), out.begin());
  put_u16(out.data() + 8, kFormatVersion);
  put_u16(out.data() + 10, static_cast<std::uint16_t>(block.kind));
  put_u32(out.data() + 12, block.record_size);
  put_u64(out.data() + 16, block.record_count);
  put_u64(out.data() + 24, block.payload_bytes);
  put_u64(out.data() + 32, block.checksum);
}

std::optional<Superblock> parse_superblock(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSuperblockSize) return std::nullopt;
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) return std::nullopt;
  if (get_u16(bytes.data() + 8) != kFormatVersion) return std::nullopt;
  const std::uint16_t kind = get_u16(bytes.data() + 10);
  if (!is_known_kind(kind)) return std::nullopt;

  Superblock block;
  block.kind = static_cast<RecordKind>(kind);
  block.record_size = get_u32(bytes.data() + 12);
  block.record_count = get_u64(bytes.data() + 16);
  block.payload_bytes = get_u64(bytes.data() + 24);
  block.checksum = get_u64(bytes.data() + 32);

  // Geometry must be self-consistent: fixed-width payloads are exactly
  // count * size (with overflow ruled out), blob payloads carry size 0.
  if (block.kind == RecordKind::Blob) {
    if (block.record_size != 0) return std::nullopt;
  } else {
    if (block.record_size == 0) return std::nullopt;
    if (block.record_count > UINT64_MAX / block.record_size) return std::nullopt;
    if (block.payload_bytes != block.record_count * block.record_size) {
      return std::nullopt;
    }
  }
  for (std::size_t i = 40; i < kSuperblockSize; ++i) {
    if (bytes[i] != 0) return std::nullopt;  // reserved bits stay reserved
  }
  return block;
}

}  // namespace cbwt::store
