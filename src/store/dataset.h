// One iteration interface over the pipeline's big collections, whether
// they live in heap vectors (the default, unchanged path) or in a
// memory-mapped record file. Stages written against RecordSource see
// dense index-ordered chunks either way, so the store-backed and
// in-memory paths run the identical per-record code — which is what
// makes their outputs bit-identical.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "store/record_file.h"
#include "util/contract.h"

namespace cbwt::store {

/// Where a dataset's records are materialized.
enum class Mode : std::uint8_t {
  InMemory,     ///< heap vectors, the seed pipeline's layout
  StoreBacked,  ///< memory-mapped record files under a store directory
};

template <typename Codec>
  requires RecordCodec<Codec>
class RecordSource {
 public:
  using value_type = typename Codec::value_type;

  /// Borrows an in-memory collection; the span must outlive the source.
  explicit RecordSource(std::span<const value_type> memory) : memory_(memory) {}

  /// Takes ownership of an opened store reader.
  explicit RecordSource(RecordFileReader<Codec> reader)
      : reader_(std::make_shared<RecordFileReader<Codec>>(std::move(reader))) {}

  [[nodiscard]] bool store_backed() const noexcept { return reader_ != nullptr; }

  /// The underlying store reader, or nullptr for in-memory sources.
  /// Exposes file-level identity (path, superblock checksum) that spans
  /// don't carry — the join's resume manifest binds spills to it.
  [[nodiscard]] const RecordFileReader<Codec>* reader() const noexcept {
    return reader_.get();
  }

  [[nodiscard]] std::uint64_t size() const noexcept {
    return store_backed() ? reader_->size() : memory_.size();
  }

  /// Visits all records in index order as dense chunks, calling
  /// fn(std::span<const value_type>, base_index). The in-memory path is
  /// zero-copy (one chunk per call span-sliced from the vector); the
  /// store path decodes into a reused O(chunk) buffer and keeps file
  /// residency bounded.
  template <typename Fn>
  void for_each_chunk(std::size_t chunk_records, Fn&& fn) const {
    for_each_chunk_range(0, size(), chunk_records, std::forward<Fn>(fn));
  }

  /// Ranged variant: visits records [begin, end) with absolute base
  /// indices, so a sharded caller can split the source into disjoint
  /// ranges while every per-record decision (fault drops keyed on the
  /// absolute index) stays identical to a full scan. Concurrent calls
  /// over disjoint ranges are safe on both paths.
  template <typename Fn>
  void for_each_chunk_range(std::uint64_t begin, std::uint64_t end,
                            std::size_t chunk_records, Fn&& fn) const {
    CBWT_EXPECTS(chunk_records > 0);
    CBWT_EXPECTS(begin <= end && end <= size());
    if (store_backed()) {
      reader_->for_each_chunk_range(begin, end, chunk_records, std::forward<Fn>(fn));
      return;
    }
    for (std::uint64_t base = begin; base < end; base += chunk_records) {
      const std::size_t n =
          static_cast<std::size_t>(std::min<std::uint64_t>(chunk_records, end - base));
      fn(memory_.subspan(static_cast<std::size_t>(base), n), base);
    }
  }

 private:
  std::span<const value_type> memory_;
  std::shared_ptr<RecordFileReader<Codec>> reader_;
};

}  // namespace cbwt::store
