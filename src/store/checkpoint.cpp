#include "store/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "store/mapped_file.h"
#include "util/contract.h"

namespace cbwt::store {

namespace {

[[nodiscard]] std::string hex_u64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

[[nodiscard]] std::uint64_t f64_bits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof value);
  std::memcpy(&bits, &value, sizeof bits);
  return bits;
}

[[nodiscard]] double f64_from_bits(std::uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

}  // namespace

void Manifest::set(std::string key, std::string value) {
  CBWT_EXPECTS(!key.empty());
  CBWT_EXPECTS(key.find_first_of(" \n") == std::string::npos);
  CBWT_EXPECTS(value.find('\n') == std::string::npos);
  entries_.emplace_back(std::move(key), std::move(value));
}

void Manifest::set_u64(std::string key, std::uint64_t value) {
  set(std::move(key), std::to_string(value));
}

void Manifest::set_f64(std::string key, double value) {
  set(std::move(key), hex_u64(f64_bits(value)));
}

std::optional<std::string_view> Manifest::get(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return std::string_view(v);
  }
  return std::nullopt;
}

std::optional<std::uint64_t> Manifest::get_u64(std::string_view key) const {
  const auto text = get(key);
  if (!text) return std::nullopt;
  std::uint64_t value = 0;
  const int base = text->starts_with("0x") ? 16 : 10;
  const std::string owned(*text);
  char* end = nullptr;
  errno = 0;
  value = std::strtoull(owned.c_str(), &end, base);
  if (errno != 0 || end == owned.c_str() || *end != '\0') return std::nullopt;
  return value;
}

std::optional<double> Manifest::get_f64(std::string_view key) const {
  const auto bits = get_u64(key);
  if (!bits) return std::nullopt;
  return f64_from_bits(*bits);
}

std::vector<std::string_view> Manifest::get_all(std::string_view key) const {
  std::vector<std::string_view> values;
  for (const auto& [k, v] : entries_) {
    if (k == key) values.emplace_back(v);
  }
  return values;
}

void write_manifest(const std::string& path, const Manifest& manifest) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw StoreError("store: cannot write manifest '" + tmp + "'");
    out << "cbwt-checkpoint " << kManifestVersion << '\n';
    for (const auto& [key, value] : manifest.entries()) {
      out << key << ' ' << value << '\n';
    }
    out.flush();
    if (!out) throw StoreError("store: cannot write manifest '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw StoreError("store: cannot rename manifest into '" + path + "'");
  }
}

Manifest read_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw StoreError("store: cannot open manifest '" + path + "'");
  std::string header;
  if (!std::getline(in, header)) {
    throw StoreError("store: empty manifest '" + path + "'");
  }
  std::uint32_t version = 0;
  {
    std::istringstream line(header);
    std::string tag;
    if (!(line >> tag >> version) || tag != "cbwt-checkpoint") {
      throw StoreError("store: '" + path + "' is not a checkpoint manifest");
    }
  }
  if (version != kManifestVersion) {
    throw StoreError("store: unsupported manifest version in '" + path + "'");
  }
  Manifest manifest;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    if (space == 0 || space == std::string::npos) {
      throw StoreError("store: malformed manifest line in '" + path + "'");
    }
    manifest.set(line.substr(0, space), line.substr(space + 1));
  }
  return manifest;
}

}  // namespace cbwt::store
