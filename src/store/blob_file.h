// The variable-length half of the columnar pair: a blob arena file.
// Fixed-width record files store a BlobRef (offset, length) where a
// struct held a string; the referenced bytes live in a sibling blob
// file and read back zero-copy as std::string_view into the mapping —
// the on-disk twin of util::Arena's intern-once/view-forever idiom.
// A writer deduplicates repeated payloads (registrable domains, URLs
// repeat heavily), so interning is also the compression.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "store/bytes.h"
#include "store/mapped_file.h"
#include "util/transparent_hash.h"

namespace cbwt::store {

/// Handle to one interned byte run inside a blob file. 12 bytes on
/// disk: offset u64 + length u32 (a single blob is capped at 4 GiB).
struct BlobRef {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;

  friend bool operator==(const BlobRef&, const BlobRef&) = default;
};

/// Bytes a BlobRef occupies inside a fixed-width record.
inline constexpr std::size_t kBlobRefSize = 12;

inline void put_blob_ref(std::uint8_t* out, const BlobRef& ref) noexcept {
  put_u64(out, ref.offset);
  put_u32(out + 8, ref.length);
}

[[nodiscard]] inline BlobRef get_blob_ref(const std::uint8_t* in) noexcept {
  return {get_u64(in), get_u32(in + 8)};
}

class BlobFileWriter {
 public:
  explicit BlobFileWriter(const std::string& path);

  BlobFileWriter(BlobFileWriter&&) noexcept = default;
  BlobFileWriter& operator=(BlobFileWriter&&) noexcept = default;
  ~BlobFileWriter();

  /// Interns `text` and returns its handle. Identical payloads return
  /// the same handle (content-addressed via an in-memory map that lives
  /// only for the writer's lifetime).
  [[nodiscard]] BlobRef intern(std::string_view text);

  /// Distinct blobs interned.
  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }

  /// Payload bytes written (deduplicated).
  [[nodiscard]] std::uint64_t bytes_used() const noexcept { return used_; }

  /// Stamps the superblock, trims and syncs. Idempotent.
  void finalize();

  [[nodiscard]] const std::string& path() const noexcept { return file_.path(); }

 private:
  MappedFile file_;
  util::StringMap<BlobRef> interned_;
  std::uint64_t count_ = 0;
  std::uint64_t used_ = 0;
  bool finalized_ = false;
};

class BlobFileReader {
 public:
  /// Opens and validates `path` (superblock, geometry, checksum);
  /// throws StoreError on any mismatch.
  explicit BlobFileReader(const std::string& path);

  BlobFileReader(BlobFileReader&&) noexcept = default;
  BlobFileReader& operator=(BlobFileReader&&) noexcept = default;

  /// Zero-copy view of one blob, valid for the reader's lifetime.
  /// Throws StoreError when the ref points outside the payload (refs
  /// come from a sibling record file, which may be corrupt or mismatched
  /// independently of this file's own checksum).
  [[nodiscard]] std::string_view view(const BlobRef& ref) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept { return payload_; }

 private:
  MappedFile file_;
  std::uint64_t count_ = 0;
  std::uint64_t payload_ = 0;
};

}  // namespace cbwt::store
