#include "store/blob_file.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "store/bytes.h"
#include "store/superblock.h"
#include "util/contract.h"

namespace cbwt::store {

namespace {
constexpr std::size_t kInitialBytes = 1 << 20;
}  // namespace

BlobFileWriter::BlobFileWriter(const std::string& path)
    : file_(MappedFile::create(path, kInitialBytes)) {}

BlobFileWriter::~BlobFileWriter() {
  if (file_.is_open() && !finalized_) {
    try {
      finalize();
    } catch (...) {  // NOLINT(bugprone-empty-catch): dtor must not throw
    }
  }
}

BlobRef BlobFileWriter::intern(std::string_view text) {
  CBWT_EXPECTS(!finalized_);
  CBWT_EXPECTS(text.size() <= std::numeric_limits<std::uint32_t>::max());
  if (text.empty()) return BlobRef{};
  if (const auto it = interned_.find(text); it != interned_.end()) {
    return it->second;
  }
  const std::size_t offset = kSuperblockSize + used_;
  if (offset + text.size() > file_.size()) {
    file_.grow_to(std::max(offset + text.size(), file_.size() * 2));
  }
  std::memcpy(file_.data() + offset, text.data(), text.size());
  const BlobRef ref{used_, static_cast<std::uint32_t>(text.size())};
  interned_.emplace(std::string(text), ref);
  used_ += text.size();
  ++count_;
  return ref;
}

void BlobFileWriter::finalize() {
  if (finalized_) return;
  Superblock block;
  block.kind = RecordKind::Blob;
  block.record_size = 0;
  block.record_count = count_;
  block.payload_bytes = used_;
  block.checksum = fnv1a({file_.data() + kSuperblockSize, used_});
  encode_superblock(block, {file_.data(), kSuperblockSize});
  file_.sync();
  file_.truncate_to(kSuperblockSize + used_);
  finalized_ = true;
}

BlobFileReader::BlobFileReader(const std::string& path)
    : file_(MappedFile::open_readonly(path)) {
  const auto block = parse_superblock({file_.data(), file_.size()});
  if (!block) throw StoreError("store: invalid superblock in '" + path + "'");
  if (block->kind != RecordKind::Blob) {
    throw StoreError("store: '" + path + "' is not a blob file");
  }
  if (file_.size() != kSuperblockSize + block->payload_bytes) {
    throw StoreError("store: '" + path + "' is truncated or has trailing bytes");
  }
  if (fnv1a({file_.data() + kSuperblockSize, block->payload_bytes}) !=
      block->checksum) {
    throw StoreError("store: checksum mismatch in '" + path + "'");
  }
  count_ = block->record_count;
  payload_ = block->payload_bytes;
}

std::string_view BlobFileReader::view(const BlobRef& ref) const {
  if (ref.length == 0) return {};
  if (ref.offset > payload_ || payload_ - ref.offset < ref.length) {
    throw StoreError("store: blob ref out of range in '" + file_.path() + "'");
  }
  return {reinterpret_cast<const char*>(file_.data() + kSuperblockSize + ref.offset),
          ref.length};
}

}  // namespace cbwt::store
