// Byte-order primitives for the on-disk store formats: every multi-byte
// field is serialized big-endian through explicit shifts, so store files
// written on any host parse identically on any other (the same
// normalization discipline as the NetFlow wire codec, which is the
// store's first record format). FNV-1a is the payload checksum of the
// superblock — not cryptographic, just a cheap end-to-end bit-rot and
// truncation detector.
#pragma once

#include <climits>
#include <cstddef>
#include <cstdint>
#include <span>

namespace cbwt::store {

static_assert(CHAR_BIT == 8, "store formats assume octet bytes");

inline void put_u16(std::uint8_t* out, std::uint16_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value >> 8);
  out[1] = static_cast<std::uint8_t>(value);
}

inline void put_u32(std::uint8_t* out, std::uint32_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value);
}

inline void put_u64(std::uint8_t* out, std::uint64_t value) noexcept {
  put_u32(out, static_cast<std::uint32_t>(value >> 32));
  put_u32(out + 4, static_cast<std::uint32_t>(value));
}

[[nodiscard]] inline std::uint16_t get_u16(const std::uint8_t* in) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{in[0]} << 8) | in[1]);
}

[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* in) noexcept {
  return (std::uint32_t{in[0]} << 24) | (std::uint32_t{in[1]} << 16) |
         (std::uint32_t{in[2]} << 8) | std::uint32_t{in[3]};
}

[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* in) noexcept {
  return (std::uint64_t{get_u32(in)} << 32) | get_u32(in + 4);
}

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// Incremental FNV-1a 64: fold chunks by threading the running hash
/// back in as `seed`, so a streaming writer never needs the whole
/// payload in memory at once.
[[nodiscard]] inline std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                         std::uint64_t seed = kFnvOffset) noexcept {
  std::uint64_t hash = seed;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace cbwt::store
