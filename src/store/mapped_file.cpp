#include "store/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/contract.h"

namespace cbwt::store {

namespace {

constexpr std::size_t kPageSize = 4096;  // lower bound; real page size divides ranges we round to it

[[nodiscard]] std::size_t round_up_page(std::size_t bytes) noexcept {
  return (bytes + kPageSize - 1) / kPageSize * kPageSize;
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw StoreError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() { close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      fd_(std::exchange(other.fd_, -1)),
      writable_(std::exchange(other.writable_, false)),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    close();
    map_ = std::exchange(other.map_, nullptr);
    size_ = std::exchange(other.size_, 0);
    fd_ = std::exchange(other.fd_, -1);
    writable_ = std::exchange(other.writable_, false);
    path_ = std::move(other.path_);
  }
  return *this;
}

void MappedFile::close() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, size_);
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
  writable_ = false;
}

MappedFile MappedFile::create(const std::string& path, std::size_t initial_bytes) {
  MappedFile file;
  file.path_ = path;
  file.writable_ = true;
  file.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (file.fd_ < 0) fail("store: cannot create", path);
  file.remap(round_up_page(initial_bytes == 0 ? 1 : initial_bytes));
  return file;
}

MappedFile MappedFile::open_readonly(const std::string& path) {
  MappedFile file;
  file.path_ = path;
  file.writable_ = false;
  file.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file.fd_ < 0) fail("store: cannot open", path);
  struct stat st{};
  if (::fstat(file.fd_, &st) != 0) fail("store: cannot stat", path);
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ == 0) return file;  // empty file: valid, nothing to map
  void* map = ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, file.fd_, 0);
  if (map == MAP_FAILED) fail("store: cannot mmap", path);
  file.map_ = map;
  // Streaming is the dominant access pattern; let the kernel read ahead
  // and reclaim behind aggressively.
  ::madvise(file.map_, file.size_, MADV_SEQUENTIAL);
  return file;
}

void MappedFile::remap(std::size_t bytes) {
  CBWT_EXPECTS(writable_ && fd_ >= 0);
  if (map_ != nullptr) {
    if (::munmap(map_, size_) != 0) fail("store: cannot unmap", path_);
    map_ = nullptr;
  }
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    fail("store: cannot resize", path_);
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (map == MAP_FAILED) fail("store: cannot mmap", path_);
  map_ = map;
  size_ = bytes;
}

void MappedFile::grow_to(std::size_t bytes) {
  CBWT_EXPECTS(writable_);
  if (bytes <= size_) return;
  remap(round_up_page(bytes));
}

void MappedFile::truncate_to(std::size_t bytes) {
  CBWT_EXPECTS(writable_ && bytes <= size_);
  // The mapping is left at its old (page-rounded) span: trimming a file
  // under a live mapping is fine, the tail pages just become unbacked.
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
    fail("store: cannot truncate", path_);
  }
}

void MappedFile::sync() {
  CBWT_EXPECTS(writable_);
  if (map_ == nullptr) return;
  if (::msync(map_, size_, MS_SYNC) != 0) fail("store: cannot sync", path_);
}

void MappedFile::flush(std::size_t offset, std::size_t length) {
  CBWT_EXPECTS(writable_);
  if (map_ == nullptr) return;
  // Round inward: only whole pages fully inside the range may be
  // scheduled and dropped, partial edge pages may still be written to.
  const std::size_t begin = round_up_page(offset);
  const std::size_t end = std::min(size_, offset + length) / kPageSize * kPageSize;
  if (begin >= end) return;
  std::uint8_t* base = data() + begin;
  if (::msync(base, end - begin, MS_ASYNC) != 0) fail("store: cannot sync", path_);
  // MADV_DONTNEED on a shared file mapping drops the PTEs from this
  // process; dirty pages live on in the page cache until writeback, so
  // no data is lost — only resident-set accounting.
  ::madvise(base, end - begin, MADV_DONTNEED);
}

void MappedFile::drop_range(std::size_t offset, std::size_t length) const {
  if (map_ == nullptr) return;
  const std::size_t begin = round_up_page(offset);
  const std::size_t end = std::min(size_, offset + length) / kPageSize * kPageSize;
  if (begin >= end) return;
  ::madvise(static_cast<std::uint8_t*>(map_) + begin, end - begin, MADV_DONTNEED);
}

}  // namespace cbwt::store
