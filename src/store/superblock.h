// The versioned header every store file opens with: magic, format
// version, record kind, record geometry, payload length and checksum in
// one 64-byte block. Parsing is defensive — a store directory is an
// input boundary like the NetFlow socket, so any malformed header
// (wrong magic, unknown version or kind, inconsistent geometry,
// non-zero reserved bytes) yields nullopt instead of a half-trusted
// struct. encode∘parse is the identity on accepted blocks, which is the
// fixpoint the fuzz harness pins.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

namespace cbwt::store {

/// File magic, first 8 bytes of every store file.
inline constexpr std::array<std::uint8_t, 8> kMagic = {'C', 'B', 'W', 'T',
                                                       'S', 'T', 'O', 'R'};

/// On-disk format version; bump on any layout change.
inline constexpr std::uint16_t kFormatVersion = 1;

/// Bytes reserved for the header at the front of every store file.
inline constexpr std::size_t kSuperblockSize = 64;

/// What one file's payload holds. The tags are part of the on-disk
/// format: readers reject a file whose kind does not match the record
/// codec they were asked to decode with.
enum class RecordKind : std::uint16_t {
  NetflowWire = 1,   ///< 57-byte NetFlow wire records (netflow::WireCodec)
  PdnsRecord = 2,    ///< fixed pDNS records with blob-ref strings
  BrowseRecord = 3,  ///< fixed extension-dataset records with blob-ref strings
  Blob = 4,          ///< raw byte arena addressed by BlobRef
  NetflowPage = 5,   ///< 4 KiB compressed flow pages (netflow::FlowPageCodec)
};

/// True for the kinds parse_superblock accepts.
[[nodiscard]] constexpr bool is_known_kind(std::uint16_t kind) noexcept {
  return kind >= 1 && kind <= 5;
}

/// Decoded header of one store file.
///
/// Layout (all fields big-endian, see store/bytes.h):
///
///   offset size  field
///   0      8     magic "CBWTSTOR"
///   8      2     format version
///   10     2     record kind tag
///   12     4     record size in bytes (0 for Blob payloads)
///   16     8     record count (Blob: number of appended blobs)
///   24     8     payload bytes (must equal count * size when size > 0)
///   32     8     FNV-1a 64 checksum of the payload bytes
///   40     24    reserved, must be zero
///   ----- 64 bytes total
struct Superblock {
  RecordKind kind = RecordKind::Blob;
  std::uint32_t record_size = 0;
  std::uint64_t record_count = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

/// Serializes `block` into the first kSuperblockSize bytes of `out`.
void encode_superblock(const Superblock& block, std::span<std::uint8_t> out);

/// Parses the header at the front of `bytes`. Rejects short buffers,
/// bad magic, unknown versions/kinds, record_size/record_count/payload
/// inconsistencies and non-zero reserved bytes.
[[nodiscard]] std::optional<Superblock> parse_superblock(
    std::span<const std::uint8_t> bytes);

}  // namespace cbwt::store
