// Checkpoint manifests: the small human-readable file that binds a
// store directory's record/blob files into one resumable snapshot. A
// manifest is an ordered list of key/value lines — `cbwt-checkpoint 1`
// header, then `key value` per line — so a directory listing plus `cat`
// tells the whole story. Doubles are stored as their IEEE-754 bit
// pattern in hex: resume must reproduce bit-identical results, and a
// decimal round-trip is exactly the kind of off-by-one-ulp leak that
// would break that silently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cbwt::store {

inline constexpr std::uint32_t kManifestVersion = 1;

/// Ordered key/value manifest. Keys may repeat (e.g. one `file` entry
/// per persisted store file); first match wins on lookup.
class Manifest {
 public:
  void set(std::string key, std::string value);
  void set_u64(std::string key, std::uint64_t value);
  /// Stores the exact IEEE-754 bit pattern, not a decimal rendering.
  void set_f64(std::string key, double value);

  [[nodiscard]] std::optional<std::string_view> get(std::string_view key) const;
  [[nodiscard]] std::optional<std::uint64_t> get_u64(std::string_view key) const;
  [[nodiscard]] std::optional<double> get_f64(std::string_view key) const;

  /// All values for a repeated key, in insertion order.
  [[nodiscard]] std::vector<std::string_view> get_all(std::string_view key) const;

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& entries()
      const noexcept {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Writes `manifest` to `path` atomically (temp file + rename).
/// Throws StoreError on I/O failure.
void write_manifest(const std::string& path, const Manifest& manifest);

/// Parses the manifest at `path`. Throws StoreError on I/O failure,
/// a bad header, an unsupported version, or a malformed line.
[[nodiscard]] Manifest read_manifest(const std::string& path);

}  // namespace cbwt::store
