// Append-only columnar record files: the store's MemoryMappedVector.
// A RecordFileWriter<Codec> encodes fixed-width records straight into a
// growing shared mapping behind a superblock; finalize() stamps the
// header (count, payload length, checksum) and trims the file. A
// RecordFileReader<Codec> validates the header end to end (magic,
// version, kind, geometry, checksum) before handing out records, and
// streams them back in bounded chunks.
//
// A Codec turns structs into portable big-endian bytes:
//
//   struct MyCodec {
//     using value_type = My;
//     static constexpr std::size_t kRecordSize = ...;   // bytes per record
//     static constexpr std::uint16_t kKind = ...;       // store::RecordKind tag
//     static void encode(const My&, std::uint8_t* out); // exactly kRecordSize
//     static std::optional<My> decode(const std::uint8_t* in);
//   };
//
// decode returning nullopt on a checksum-valid file means the file was
// written by something else entirely; readers surface that as
// StoreError rather than yielding garbage structs.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "store/bytes.h"
#include "store/mapped_file.h"
#include "store/superblock.h"
#include "util/contract.h"

namespace cbwt::store {

template <typename C>
concept RecordCodec = requires(const typename C::value_type& value,
                               const std::uint8_t* in, std::uint8_t* out) {
  { C::kRecordSize } -> std::convertible_to<std::size_t>;
  { C::kKind } -> std::convertible_to<std::uint16_t>;
  C::encode(value, out);
  { C::decode(in) } -> std::same_as<std::optional<typename C::value_type>>;
};

/// Records per chunk the streaming readers decode at a time; at 64Ki
/// records the decode buffer stays a few MB for every codec in the
/// tree, which is the store's resident-memory unit.
inline constexpr std::size_t kDefaultChunkRecords = 64 * 1024;

/// What one checksum_payload pass did, for the store I/O metrics.
struct ChecksumStats {
  std::uint64_t windows = 0;        ///< 8 MiB hash windows processed
  std::uint64_t pages_dropped = 0;  ///< 4 KiB pages evicted from RSS
};

/// FNV-1a over the payload of `file` in bounded windows, dropping each
/// window from the resident set after hashing — checksumming a
/// multi-GB file never holds more than one window resident. Writer
/// pages dropped here stay dirty in the page cache (MADV_DONTNEED on a
/// shared file mapping never loses data), so a following sync() still
/// makes them durable.
inline std::uint64_t checksum_payload(const MappedFile& file, std::size_t payload,
                                      ChecksumStats* stats = nullptr) {
  constexpr std::size_t kWindowBytes = 8 << 20;
  std::uint64_t checksum = kFnvOffset;
  for (std::size_t offset = 0; offset < payload; offset += kWindowBytes) {
    const std::size_t n = std::min(kWindowBytes, payload - offset);
    checksum = fnv1a({file.data() + kSuperblockSize + offset, n}, checksum);
    file.drop_range(kSuperblockSize + offset, n);
    if (stats != nullptr) {
      ++stats->windows;
      stats->pages_dropped += (n + 4095) / 4096;
    }
  }
  return checksum;
}

template <typename Codec>
  requires RecordCodec<Codec>
class RecordFileWriter {
 public:
  using value_type = typename Codec::value_type;

  /// `registry` (optional, not owned) receives the cbwt_store_* I/O
  /// counters at finalize time; metrics never alter what hits the disk.
  /// With `incremental_checksum` the payload FNV-1a is folded append by
  /// append — bytes are hashed while still cache-hot — and finalize
  /// skips its full re-read of the file. The stamped superblock is
  /// byte-identical either way (FNV-1a is a sequential fold and records
  /// are appended strictly in order); the mode only moves when the
  /// hashing work happens, which is what keeps the join's spill
  /// finalize off the pass-1 critical path.
  explicit RecordFileWriter(const std::string& path, obs::Registry* registry = nullptr,
                            bool incremental_checksum = false)
      : file_(MappedFile::create(path, kInitialBytes)),
        incremental_checksum_(incremental_checksum) {
    if (registry != nullptr) {
      bytes_written_ = &registry->counter("cbwt_store_bytes_written_total");
      records_written_ = &registry->counter("cbwt_store_records_written_total");
      files_finalized_ = &registry->counter("cbwt_store_files_finalized_total");
      checksum_windows_ = &registry->counter("cbwt_store_checksum_windows_total");
      pages_dropped_ = &registry->counter("cbwt_store_pages_dropped_total");
    }
  }

  RecordFileWriter(RecordFileWriter&&) noexcept = default;
  RecordFileWriter& operator=(RecordFileWriter&&) noexcept = default;

  ~RecordFileWriter() {
    // Abandoned writers (exception unwind) leave a file without a valid
    // superblock behind — readers reject it, which is the safe failure.
    if (file_.is_open() && !finalized_) {
      try {
        finalize();
      } catch (...) {  // NOLINT(bugprone-empty-catch): dtor must not throw
      }
    }
  }

  void append(const value_type& record) {
    const std::size_t offset = reserve_record();
    Codec::encode(record, file_.data() + offset);
    commit_record(offset);
  }

  void append(std::span<const value_type> records) {
    for (const auto& record : records) append(record);
  }

  /// Appends one pre-encoded record image (exactly kRecordSize bytes):
  /// the zero-re-encode path for producers that already hold wire-ready
  /// bytes (the join's spill pass builds its flow pages in place and
  /// hands the sealed images here). Byte-for-byte equivalent to
  /// append() of the decoded record.
  void append_encoded(std::span<const std::uint8_t> bytes) {
    CBWT_EXPECTS(bytes.size() == Codec::kRecordSize);
    const std::size_t offset = reserve_record();
    std::memcpy(file_.data() + offset, bytes.data(), Codec::kRecordSize);
    commit_record(offset);
  }

  /// Records appended so far.
  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }

  /// Stamps the superblock (count, payload, checksum), trims the file
  /// to its exact length and syncs everything to disk. Idempotent.
  void finalize() {
    if (finalized_) return;
    const std::size_t payload = count_ * Codec::kRecordSize;
    Superblock block;
    block.kind = static_cast<RecordKind>(Codec::kKind);
    block.record_size = static_cast<std::uint32_t>(Codec::kRecordSize);
    block.record_count = count_;
    block.payload_bytes = payload;
    ChecksumStats checksum_stats;
    block.checksum = incremental_checksum_
                         ? running_checksum_
                         : checksum_payload(file_, payload, &checksum_stats);
    encode_superblock(block, {file_.data(), kSuperblockSize});
    file_.sync();
    file_.truncate_to(kSuperblockSize + payload);
    finalized_ = true;
    // Flushed once per file, not per append: the writer is single-
    // threaded, so local accumulation is free and the counters stay off
    // the append hot path.
    if (files_finalized_ != nullptr) {
      bytes_written_->add(kSuperblockSize + payload);
      records_written_->add(count_);
      files_finalized_->add(1);
      checksum_windows_->add(checksum_stats.windows);
      pages_dropped_->add(checksum_stats.pages_dropped);
    }
  }

  [[nodiscard]] const std::string& path() const noexcept { return file_.path(); }

 private:
  static constexpr std::size_t kInitialBytes = 1 << 20;
  /// Payload bytes between RSS-bounding flushes of the written prefix.
  static constexpr std::size_t kFlushBytes = 8 << 20;

  /// Grows the mapping if needed and returns the next record's offset.
  [[nodiscard]] std::size_t reserve_record() {
    CBWT_EXPECTS(!finalized_);
    const std::size_t offset = kSuperblockSize + count_ * Codec::kRecordSize;
    if (offset + Codec::kRecordSize > file_.size()) {
      file_.grow_to(std::max(offset + Codec::kRecordSize, file_.size() * 2));
    }
    return offset;
  }

  /// Folds the just-written record into the running checksum (bytes are
  /// still cache-hot) and advances the write cursor.
  void commit_record(std::size_t offset) {
    if (incremental_checksum_) {
      running_checksum_ =
          fnv1a({file_.data() + offset, Codec::kRecordSize}, running_checksum_);
    }
    ++count_;
    maybe_flush(offset + Codec::kRecordSize);
  }

  void maybe_flush(std::size_t written_end) {
    if (written_end - flushed_ < kFlushBytes) return;
    // Keep the superblock page resident; flush only completed payload.
    file_.flush(flushed_, written_end - flushed_);
    flushed_ = written_end;
  }

  MappedFile file_;
  std::uint64_t count_ = 0;
  std::size_t flushed_ = kSuperblockSize;
  bool finalized_ = false;
  bool incremental_checksum_ = false;
  std::uint64_t running_checksum_ = kFnvOffset;
  // Metric handles; all null (and finalize skips them) with no registry.
  obs::Counter* bytes_written_ = nullptr;
  obs::Counter* records_written_ = nullptr;
  obs::Counter* files_finalized_ = nullptr;
  obs::Counter* checksum_windows_ = nullptr;
  obs::Counter* pages_dropped_ = nullptr;
};

template <typename Codec>
  requires RecordCodec<Codec>
class RecordFileReader {
 public:
  using value_type = typename Codec::value_type;

  /// Opens and fully validates `path`: superblock, geometry against the
  /// file length, payload checksum. Throws StoreError on any mismatch.
  /// `registry` (optional, not owned) receives the cbwt_store_* read
  /// metrics (open-time validation plus per-chunk streaming counts).
  explicit RecordFileReader(const std::string& path, obs::Registry* registry = nullptr)
      : file_(MappedFile::open_readonly(path)) {
    const auto block = parse_superblock({file_.data(), file_.size()});
    if (!block) throw StoreError("store: invalid superblock in '" + path + "'");
    if (block->kind != static_cast<RecordKind>(Codec::kKind) ||
        block->record_size != Codec::kRecordSize) {
      throw StoreError("store: '" + path + "' holds a different record kind");
    }
    if (file_.size() != kSuperblockSize + block->payload_bytes) {
      throw StoreError("store: '" + path + "' is truncated or has trailing bytes");
    }
    ChecksumStats checksum_stats;
    if (checksum_payload(file_, block->payload_bytes, &checksum_stats) !=
        block->checksum) {
      throw StoreError("store: checksum mismatch in '" + path + "'");
    }
    count_ = block->record_count;
    checksum_ = block->checksum;
    if (registry != nullptr) {
      bytes_read_ = &registry->counter("cbwt_store_bytes_read_total");
      records_read_ = &registry->counter("cbwt_store_records_read_total");
      files_opened_ = &registry->counter("cbwt_store_files_opened_total");
      checksum_windows_ = &registry->counter("cbwt_store_checksum_windows_total");
      pages_dropped_ = &registry->counter("cbwt_store_pages_dropped_total");
      files_opened_->add(1);
      checksum_windows_->add(checksum_stats.windows);
      pages_dropped_->add(checksum_stats.pages_dropped);
    }
  }

  RecordFileReader(RecordFileReader&&) noexcept = default;
  RecordFileReader& operator=(RecordFileReader&&) noexcept = default;

  [[nodiscard]] std::uint64_t size() const noexcept { return count_; }

  /// The superblock's payload checksum, verified at open. A cheap
  /// content identity for the whole file (resume manifests compare it
  /// to detect a regenerated input without rehashing the payload).
  [[nodiscard]] std::uint64_t checksum() const noexcept { return checksum_; }

  /// Decodes record `index`. Throws StoreError if the bytes do not
  /// decode (a checksum-valid file written with a foreign layout).
  [[nodiscard]] value_type at(std::uint64_t index) const {
    CBWT_EXPECTS(index < count_);
    const auto record =
        Codec::decode(file_.data() + kSuperblockSize + index * Codec::kRecordSize);
    if (!record) {
      throw StoreError("store: malformed record in '" + file_.path() + "'");
    }
    return *record;
  }

  /// Streams every record in index order as dense chunks of at most
  /// `chunk_records`, invoking fn(std::span<const value_type>,
  /// base_index). The decode buffer is reused and consumed file pages
  /// are dropped from the resident set, so memory stays O(chunk).
  template <typename Fn>
  void for_each_chunk(std::size_t chunk_records, Fn&& fn) const {
    for_each_chunk_range(0, count_, chunk_records, std::forward<Fn>(fn));
  }

  /// Ranged variant: streams records [begin, end) with absolute base
  /// indices. Safe to call concurrently from several threads (the
  /// sharded spill pass does): the mapping is read-only, the metric
  /// handles are atomic, and the decode buffer is per-call — a
  /// drop_range racing another shard's read merely re-faults the page.
  template <typename Fn>
  void for_each_chunk_range(std::uint64_t begin, std::uint64_t end,
                            std::size_t chunk_records, Fn&& fn) const {
    CBWT_EXPECTS(chunk_records > 0);
    CBWT_EXPECTS(begin <= end && end <= count_);
    std::vector<value_type> buffer;
    buffer.reserve(std::min<std::uint64_t>(chunk_records, end - begin));
    for (std::uint64_t base = begin; base < end; base += chunk_records) {
      const std::uint64_t n = std::min<std::uint64_t>(chunk_records, end - base);
      buffer.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        const auto record = Codec::decode(file_.data() + kSuperblockSize +
                                          (base + i) * Codec::kRecordSize);
        if (!record) {
          throw StoreError("store: malformed record in '" + file_.path() + "'");
        }
        buffer.push_back(*record);
      }
      fn(std::span<const value_type>(buffer), base);
      file_.drop_range(kSuperblockSize + base * Codec::kRecordSize,
                       n * Codec::kRecordSize);
      if (records_read_ != nullptr) {
        records_read_->add(n);
        bytes_read_->add(n * Codec::kRecordSize);
        pages_dropped_->add((n * Codec::kRecordSize + 4095) / 4096);
      }
    }
  }

  [[nodiscard]] const std::string& path() const noexcept { return file_.path(); }

 private:
  MappedFile file_;
  std::uint64_t count_ = 0;
  std::uint64_t checksum_ = 0;
  // Metric handles; all null (and the streaming path skips them) with
  // no registry attached.
  obs::Counter* bytes_read_ = nullptr;
  obs::Counter* records_read_ = nullptr;
  obs::Counter* files_opened_ = nullptr;
  obs::Counter* checksum_windows_ = nullptr;
  obs::Counter* pages_dropped_ = nullptr;
};

}  // namespace cbwt::store
