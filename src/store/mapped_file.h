// RAII memory-mapped file, the single owner of every mmap-family
// syscall in the tree (enforced by the cbwt-lint `mmap-syscall` rule).
// Two modes:
//
//   * writable  — create() truncates/creates the file at an initial
//     capacity and maps it shared; grow_to() remaps at a larger size,
//     truncate_to() trims the file to its final length. Writers keep
//     resident memory bounded with flush(): completed byte ranges are
//     scheduled for writeback and dropped from the process's resident
//     set, so appending gigabytes never holds gigabytes.
//   * read-only — open_readonly() maps an existing file; advising
//     sequential access plus drop_range() after consuming each chunk
//     gives streaming readers the same bounded-RSS property.
//
// Failures throw StoreError: a store directory is operator input, and
// callers (Study resume, the CLI runner) want one catchable type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace cbwt::store {

/// Any store-layer I/O or validation failure (missing file, mmap error,
/// corrupt superblock, checksum mismatch, malformed record).
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class MappedFile {
 public:
  MappedFile() noexcept = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Creates (or truncates) `path` and maps it writable at
  /// `initial_bytes` capacity (rounded up to one page minimum).
  [[nodiscard]] static MappedFile create(const std::string& path,
                                         std::size_t initial_bytes);

  /// Maps an existing file read-only, advising sequential access.
  /// Empty files map as data() == nullptr, size() == 0.
  [[nodiscard]] static MappedFile open_readonly(const std::string& path);

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] bool writable() const noexcept { return writable_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Start of the mapping; nullptr only for an empty read-only file.
  [[nodiscard]] std::uint8_t* data() noexcept { return static_cast<std::uint8_t*>(map_); }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return static_cast<const std::uint8_t*>(map_);
  }

  /// Mapped length: the current capacity for writable files, the file
  /// length for read-only ones.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Grows the file and remaps so size() >= bytes (geometric growth is
  /// the caller's policy; this grows to exactly max(bytes, size())).
  void grow_to(std::size_t bytes);

  /// Shrinks the file to its final length (writable only; the mapping
  /// stays valid for [0, bytes)).
  void truncate_to(std::size_t bytes);

  /// Synchronously flushes the whole mapping to disk (msync MS_SYNC).
  void sync();

  /// Schedules writeback of [offset, offset+length) and drops those
  /// pages from the resident set. The data stays readable (faults back
  /// in from the page cache / file), so this is purely an RSS bound.
  /// Offsets are rounded inward to page boundaries; no-op on a range
  /// smaller than one page.
  void flush(std::size_t offset, std::size_t length);

  /// Drops [offset, offset+length) from the resident set after the
  /// caller is done with it. Any outstanding pointer into the range
  /// stays valid but re-faults on next access. Logically const: only
  /// kernel residency accounting changes, never the bytes.
  void drop_range(std::size_t offset, std::size_t length) const;

 private:
  void close() noexcept;
  void remap(std::size_t bytes);

  void* map_ = nullptr;
  std::size_t size_ = 0;
  int fd_ = -1;
  bool writable_ = false;
  std::string path_;
};

}  // namespace cbwt::store
