// OpenRTB-style message types (a working subset of the IAB OpenRTB 2.3
// objects the paper's Fig. 1 ecosystem exchanges). The browser renders a
// publisher page; each ad slot becomes an Impression inside a BidRequest
// that the ad network (exchange side) fans out to DSPs; responses carry
// bids and win/creative/sync URLs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "world/types.h"

namespace cbwt::rtb {

/// One ad slot being auctioned (OpenRTB `imp`).
struct Impression {
  std::string id;            ///< impression id within the request
  int width = 300;
  int height = 250;
  double bidfloor = 0.05;    ///< CPM floor set by the publisher
  bool interstitial = false;
};

/// The auctioned context (OpenRTB `BidRequest` with site/user/regs).
struct BidRequest {
  std::string id;                      ///< auction id
  Impression imp;
  std::string site_domain;             ///< first-party domain
  std::vector<world::TopicId> site_topics;
  std::string user_country;            ///< geo the exchange passes along
  world::UserId user = 0;
  /// COPPA flag (OpenRTB `regs.coppa`): set when the site addresses
  /// minors; compliant bidders must not behaviourally target.
  bool coppa = false;
  /// GDPR-sensitive context: set when the site falls in a protected
  /// category; the paper finds bidding continues regardless (§6).
  bool sensitive_context = false;
};

/// One DSP's answer for an impression (OpenRTB `Bid`).
struct Bid {
  std::string request_id;
  world::OrgId dsp = 0;
  double price_cpm = 0.0;
  std::string creative_url;   ///< ad markup fetch (browser-visible flow)
  std::string win_notice_url; ///< nurl, fired on win (browser-visible)
  bool wants_sync = false;    ///< DSP asks the exchange to cookie-sync
};

/// OpenRTB `BidResponse` reduced to the single-impression case.
struct BidResponse {
  std::optional<Bid> bid;  ///< empty = no-bid
  double latency_ms = 0.0; ///< how long the bidder took (timeout control)
};

/// Clearing rule of the exchange.
enum class PriceRule : std::uint8_t {
  FirstPrice,
  SecondPrice,  ///< the 2017/18 default; winner pays runner-up + 0.01
};

/// Outcome of one auction round.
struct AuctionOutcome {
  std::optional<Bid> winner;
  double clearing_price_cpm = 0.0;
  std::vector<world::OrgId> participants;  ///< DSPs that received the request
  std::vector<world::OrgId> timed_out;     ///< DSPs dropped for latency
  std::vector<world::OrgId> no_bids;       ///< DSPs that declined
};

}  // namespace cbwt::rtb
