#include "rtb/cookies.h"

namespace cbwt::rtb {

std::optional<std::uint64_t> CookieJar::id_of(world::OrgId org) const {
  const auto it = ids_.find(org);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t CookieJar::ensure_id(world::OrgId org, util::Rng& rng) {
  const auto it = ids_.find(org);
  if (it != ids_.end()) return it->second;
  const std::uint64_t minted = rng();
  ids_.emplace(org, minted);
  return minted;
}

bool CookieJar::has_id(world::OrgId org) const { return ids_.contains(org); }

bool CookieJar::synced(world::OrgId a, world::OrgId b) const {
  return synced_.contains(key(a, b));
}

void CookieJar::record_sync(world::OrgId a, world::OrgId b) {
  if (a == b) return;
  synced_.insert(key(a, b));
}

}  // namespace cbwt::rtb
