#include "rtb/auction.h"

#include <algorithm>

#include "geo/country.h"

namespace cbwt::rtb {

AuctionEngine::AuctionEngine(const world::World& world, const dns::Resolver& resolver,
                             AuctionConfig config)
    : world_(&world), resolver_(&resolver), config_(config) {}

double AuctionEngine::bid_rtt_ms(const world::Organization& dsp,
                                 const BidRequest& request, util::Rng& rng) const {
  if (dsp.domains.empty()) return config_.timeout_ms;
  // Resolve the DSP's bid endpoint for this user and measure the path to
  // the chosen server.
  const auto origin = resolver_->origin_for(request.user_country, false);
  const auto answer = resolver_->resolve(dsp.domains.front(), origin, rng);
  const auto& dc = world_->datacenter(world_->server(answer.server).datacenter);
  const geo::Country* home = geo::find_country(request.user_country);
  if (home == nullptr) return config_.timeout_ms;
  return 2.0 * geo::propagation_delay_ms(home->centroid, dc.location);
}

BidResponse AuctionEngine::solicit(const world::Organization& dsp,
                                   const BidRequest& request, const CookieJar& jar,
                                   util::Rng& rng) const {
  BidResponse response;
  response.latency_ms =
      bid_rtt_ms(dsp, request, rng) +
      rng.next_double_in(config_.compute_ms_min, config_.compute_ms_max);

  // COPPA-regulated inventory: most bidders skip behavioural bidding.
  if (request.coppa && rng.chance(0.8)) return response;
  if (rng.chance(config_.no_bid_probability)) return response;

  const bool has_profile = jar.has_id(dsp.id);
  // Valuation: popularity-scaled base CPM, lifted when the DSP can link
  // the user to a synced behavioural profile.
  double value = request.imp.bidfloor +
                 rng.next_pareto(1.3, 40.0) * 0.05 * (1.0 + 50.0 * dsp.popularity);
  if (has_profile) value *= config_.synced_value_boost;
  if (value < request.imp.bidfloor) return response;

  Bid bid;
  bid.request_id = request.id;
  bid.dsp = dsp.id;
  bid.price_cpm = value;
  const auto& endpoint = world_->domain(dsp.domains.front());
  bid.creative_url = "https://" + endpoint.fqdn + "/creative?auction=" + request.id;
  bid.win_notice_url = "https://" + endpoint.fqdn + "/win?auction=" + request.id +
                       "&price=${AUCTION_PRICE}";
  bid.wants_sync = !has_profile && rng.chance(config_.sync_request_probability);
  response.bid = std::move(bid);
  return response;
}

AuctionOutcome AuctionEngine::run(const BidRequest& request,
                                  std::span<const world::OrgId> bidders,
                                  const CookieJar& jar, util::Rng& rng) const {
  AuctionOutcome outcome;
  std::vector<Bid> valid;
  for (const auto dsp_id : bidders) {
    const auto& dsp = world_->org(dsp_id);
    outcome.participants.push_back(dsp_id);
    const auto response = solicit(dsp, request, jar, rng);
    if (response.latency_ms > config_.timeout_ms) {
      outcome.timed_out.push_back(dsp_id);
      continue;
    }
    if (!response.bid) {
      outcome.no_bids.push_back(dsp_id);
      continue;
    }
    valid.push_back(*response.bid);
  }
  if (valid.empty()) return outcome;

  std::sort(valid.begin(), valid.end(),
            [](const Bid& a, const Bid& b) { return a.price_cpm > b.price_cpm; });
  outcome.winner = valid.front();
  switch (config_.price_rule) {
    case PriceRule::FirstPrice:
      outcome.clearing_price_cpm = valid.front().price_cpm;
      break;
    case PriceRule::SecondPrice:
      // Runner-up + 1 cent, never above the winning bid itself.
      outcome.clearing_price_cpm =
          valid.size() > 1
              ? std::min(valid.front().price_cpm, valid[1].price_cpm + 0.01)
              : request.imp.bidfloor;
      break;
  }
  return outcome;
}

}  // namespace cbwt::rtb
