// Per-user cookie state across the ad ecosystem: the identifier each
// organization holds for the user, and which pairs of organizations have
// cookie-synced those identifiers. Sync state is what makes behavioural
// bids more valuable, which is why the sync cascades the extension
// observes exist at all.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "util/prng.h"
#include "world/types.h"

namespace cbwt::rtb {

/// One user's view of the tracking ecosystem's identifiers.
class CookieJar {
 public:
  /// The id org holds for this user, if any.
  [[nodiscard]] std::optional<std::uint64_t> id_of(world::OrgId org) const;

  /// Returns the org's id for the user, minting one on first contact.
  std::uint64_t ensure_id(world::OrgId org, util::Rng& rng);

  [[nodiscard]] bool has_id(world::OrgId org) const;

  /// True when the two orgs have exchanged identifiers for this user.
  [[nodiscard]] bool synced(world::OrgId a, world::OrgId b) const;

  /// Records a completed cookie-sync between two orgs.
  void record_sync(world::OrgId a, world::OrgId b);

  [[nodiscard]] std::size_t known_orgs() const noexcept { return ids_.size(); }
  [[nodiscard]] std::size_t sync_edges() const noexcept { return synced_.size(); }

  /// Iterates sync pairs (a < b) — input for the collaboration graph.
  [[nodiscard]] const std::set<std::pair<world::OrgId, world::OrgId>>& sync_pairs()
      const noexcept {
    return synced_;
  }

 private:
  static std::pair<world::OrgId, world::OrgId> key(world::OrgId a, world::OrgId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  std::map<world::OrgId, std::uint64_t> ids_;
  std::set<std::pair<world::OrgId, world::OrgId>> synced_;
};

}  // namespace cbwt::rtb
