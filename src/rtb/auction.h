// The exchange-side auction: fan the BidRequest out to candidate DSPs,
// model each bidder's valuation (synced cookies raise it — that is the
// economics behind cookie-sync cascades), apply the RTB latency budget
// (bidders hosted far from the exchange miss it), and clear the auction.
//
// Geography enters twice, exactly as the paper argues: bid latency
// pushes operators to host near users (§5's RTB motivation), and the
// winner/sync flows are what the extension observes crossing borders.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "dns/resolver.h"
#include "rtb/cookies.h"
#include "rtb/openrtb.h"
#include "util/prng.h"
#include "world/world.h"

namespace cbwt::rtb {

struct AuctionConfig {
  PriceRule price_rule = PriceRule::SecondPrice;
  /// RTB latency budget; bids arriving later are dropped (the paper cites
  /// the ~100 ms bidding budget as the reason tracker IPs stay dedicated).
  double timeout_ms = 100.0;
  /// Bidder-side processing time range added on top of network RTT.
  double compute_ms_min = 8.0;
  double compute_ms_max = 45.0;
  /// Base no-bid probability (campaign/budget misses).
  double no_bid_probability = 0.25;
  /// Valuation lift when the DSP has a synced id for the user.
  double synced_value_boost = 1.6;
  /// Probability an unsynced winner requests a cookie-sync.
  double sync_request_probability = 0.85;
};

/// Runs auctions against a fixed world + resolver.
class AuctionEngine {
 public:
  AuctionEngine(const world::World& world, const dns::Resolver& resolver,
                AuctionConfig config = {});

  /// Runs one auction among `bidders` for `request`. `jar` supplies the
  /// user's cookie state (bids read it; the caller applies sync effects
  /// when the browser actually fires the sync pixels).
  [[nodiscard]] AuctionOutcome run(const BidRequest& request,
                                   std::span<const world::OrgId> bidders,
                                   const CookieJar& jar, util::Rng& rng) const;

  /// One bidder's response (exposed for tests): valuation, latency, and
  /// whether a sync would be requested.
  [[nodiscard]] BidResponse solicit(const world::Organization& dsp,
                                    const BidRequest& request, const CookieJar& jar,
                                    util::Rng& rng) const;

  [[nodiscard]] const AuctionConfig& config() const noexcept { return config_; }

 private:
  /// Round-trip time from the user's country to the DSP's nearest server
  /// answering its bid endpoint.
  [[nodiscard]] double bid_rtt_ms(const world::Organization& dsp,
                                  const BidRequest& request, util::Rng& rng) const;

  const world::World* world_;
  const dns::Resolver* resolver_;
  AuctionConfig config_;
};

}  // namespace cbwt::rtb
