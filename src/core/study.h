// The Study facade: one object that wires the whole measurement pipeline
// the way the paper ran it —
//
//   build world -> recruit users & collect extension dataset (feeding
//   pDNS) -> background pDNS replication -> classify tracking flows ->
//   complete tracker IP set -> geolocate (3 tools) -> analyze border
//   crossing -> what-if localization -> sensitive categories -> ISP
//   NetFlow scale-up.
//
// Every stage is lazy and memoized; benches and examples ask for exactly
// the stages they need. A Study is deterministic in its config.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/flows.h"
#include "browser/extension.h"
#include "classify/classifier.h"
#include "dns/resolver.h"
#include "fault/fault.h"
#include "filterlist/generate.h"
#include "geoloc/service.h"
#include "netflow/collector.h"
#include "netflow/generator.h"
#include "obs/http_inspector.h"
#include "obs/metrics.h"
#include "pdns/replication.h"
#include "runtime/thread_pool.h"
#include "sensitive/detection.h"
#include "store/dataset.h"
#include "util/thread_annotations.h"
#include "whatif/localization.h"
#include "world/world.h"

namespace cbwt::core {

/// Dataset materialization and checkpoint/resume knobs.
struct StorageConfig {
  /// InMemory keeps the seed pipeline's heap vectors. StoreBacked
  /// spills each NetFlow snapshot to a memory-mapped record file under
  /// `directory` and streams it back in bounded chunks, so snapshot
  /// size is bounded by disk, not RAM. Results are bit-identical
  /// between the two modes.
  store::Mode mode = store::Mode::InMemory;
  /// Store directory for StoreBacked spill files and save_checkpoint().
  /// Required (non-empty) when mode == StoreBacked.
  std::string directory;
  /// Checkpoint directory to resume from ("" = fresh run). The saved
  /// manifest's seed and world scale must match this config; downstream
  /// results equal the straight-through run exactly, at any thread
  /// count.
  std::string resume_from;
  /// Records per streamed chunk on store-backed paths.
  std::size_t chunk_records = store::kDefaultChunkRecords;
  /// Radix fan-out of the out-of-core NetFlow join (netflow/join.h)
  /// that StoreBacked run_isp_snapshot uses in place of the in-memory
  /// collect walk. Never affects results, only spill-file shape.
  std::size_t join_partitions = 16;
  /// Pass-1 spill shard geometry (JoinConfig::spill_min_shard_records /
  /// spill_max_shards). Never affects results; changes the spill-file
  /// page layout, so a geometry change silently re-partitions instead
  /// of resuming.
  std::size_t join_spill_min_shard_records = 64 * 1024;
  std::size_t join_spill_max_shards = 256;
};

struct StudyConfig {
  world::WorldConfig world;
  browser::CollectorConfig collector;
  pdns::ReplicationConfig replication;
  classify::ClassifierConfig classifier;
  geoloc::MeshConfig mesh;
  geoloc::ActiveGeolocatorOptions active;
  geoloc::CommercialDbOptions commercial;
  dns::ResolverOptions resolver;
  netflow::GeneratorConfig netflow;
  sensitive::DetectionConfig sensitive;
  /// Worker threads for the sharded stages (classification, active
  /// geolocation, NetFlow generation/collection). 1 = exact serial path
  /// (no pool is created); 0 = one thread per hardware core. Results are
  /// bit-identical for every value.
  unsigned threads = 1;
  /// Optional metrics registry (not owned, must outlive the Study). When
  /// attached, every pipeline stage records a span and the instrumented
  /// modules publish their counters into it; results stay bit-identical
  /// with or without it. nullptr (the default) keeps every instrumented
  /// path a null-check-only no-op.
  obs::Registry* registry = nullptr;
  /// Optional flight recorder (not owned, must outlive the Study).
  /// Armed onto `registry` at construction: spans and worker shards then
  /// emit begin/end events for the Chrome-trace timeline. Requires a
  /// registry; ignored without one. Results stay bit-identical with or
  /// without it.
  obs::TraceBuffer* trace = nullptr;
  /// Embedded live inspector (/metrics, /report, /trace, /healthz).
  /// Disabled by default; when enabled the Study starts an HttpInspector
  /// at construction and stops it at destruction. The server thread only
  /// reads registry/trace snapshots — never study state or RNG.
  obs::InspectorConfig inspector;
  /// Dataset materialization (in-memory vs store-backed) and
  /// checkpoint/resume; the default is the unchanged in-memory path.
  StorageConfig storage;
  /// Fault-injection plan for the external-facing services (DNS, pDNS
  /// replication, geolocation probes/measurements, NetFlow export). The
  /// default (all rates zero) is the zero-cost path: stage outputs and
  /// the registry's contents are byte-identical to a build without the
  /// fault layer. Any enabled plan stays deterministic in (seed, plan)
  /// across thread counts.
  fault::FaultPlan fault_plan;
};

class Study {
 public:
  explicit Study(StudyConfig config = {});
  ~Study();
  Study(const Study&) = delete;
  Study& operator=(const Study&) = delete;

  [[nodiscard]] const StudyConfig& config() const noexcept { return config_; }
  [[nodiscard]] const world::World& world();
  [[nodiscard]] const dns::Resolver& resolver();

  /// The recruited users' collected dataset (collection feeds pDNS).
  [[nodiscard]] const browser::ExtensionDataset& dataset();

  /// pDNS store after extension feeding + background replication.
  [[nodiscard]] const pdns::Store& pdns_store();

  /// Per-request classification outcomes (parallel to dataset()).
  [[nodiscard]] const std::vector<classify::Outcome>& outcomes();
  [[nodiscard]] const classify::Classifier& classifier();

  /// Distinct tracker IPs observed by the users' browsers on classified
  /// tracking flows.
  [[nodiscard]] const std::vector<net::IpAddress>& observed_tracker_ips();

  /// Tracker IPs after pDNS completion (§3.3): observed plus the
  /// additional addresses the store knows for the same tracking domains.
  [[nodiscard]] const std::vector<net::IpAddress>& completed_tracker_ips();

  /// The three-tool geolocation service.
  [[nodiscard]] const geoloc::GeoService& geo();

  /// Classified tracking flows of the extension dataset.
  [[nodiscard]] const std::vector<analysis::Flow>& flows();

  /// Flow analyzer bound to a tool (defaults to the active/IPmap tool,
  /// which the paper establishes as the reliable one).
  [[nodiscard]] analysis::FlowAnalyzer analyzer(
      geoloc::Tool tool = geoloc::Tool::ActiveIpmap);

  /// Localization what-if study loaded with the EU28 tracking flows.
  [[nodiscard]] const whatif::LocalizationStudy& localization();

  /// Sensitive-category catalog over the visited publishers.
  [[nodiscard]] const sensitive::Catalog& sensitive_catalog();

  /// One ISP-day NetFlow run: generate, collect, and match against the
  /// completed tracker IP list valid on that day.
  struct IspRun {
    netflow::CollectionResult collection;
    std::vector<analysis::Flow> flows;
    std::uint64_t exported_records = 0;
  };
  [[nodiscard]] IspRun run_isp_snapshot(const netflow::IspProfile& isp,
                                        const netflow::Snapshot& snapshot);

  /// The lazily created worker pool; nullptr when config().threads == 1,
  /// which keeps every stage on the exact inline serial path.
  [[nodiscard]] runtime::ThreadPool* pool();

  /// The running inspector, or nullptr when config.inspector.enabled is
  /// false. Use inspector()->port() to find an ephemeral bind.
  [[nodiscard]] obs::HttpInspector* inspector() noexcept { return inspector_.get(); }

  /// Machine-readable run report: seed, scale, threads, and the attached
  /// registry's full metric state (counters, gauges, histograms, one
  /// span per executed stage) as a JSON document. With no registry
  /// attached the report is still valid JSON with empty metric sections.
  /// Call after the stages of interest have run; pool counters are
  /// refreshed into the registry on each call.
  [[nodiscard]] std::string run_report();

  /// Persists the completed early stages (extension dataset + the pDNS
  /// store in its current state) to `directory` as store files plus a
  /// manifest. A later process pointing storage.resume_from at the
  /// directory skips collection, reloads the saved state, and produces
  /// bit-identical downstream results — same seed, any thread count.
  /// Replication-not-yet-run is recorded in the manifest; the resumed
  /// Study re-runs it from its own stage RNG, which depends only on
  /// (seed, label).
  void save_checkpoint(const std::string& directory);

 private:
  /// Loads storage.resume_from (once) before dataset collection runs.
  void maybe_resume();

  [[nodiscard]] util::Rng stage_rng(std::uint64_t label) const;

  /// The plan handed to the fault-aware stages: null unless enabled, so
  /// the default config takes every stage's fault-free branch.
  [[nodiscard]] const fault::FaultPlan* fault_plan() const noexcept;

  /// Registrable domains of classified tracking requests, shared by pDNS
  /// completion and the per-day tracker index of run_isp_snapshot.
  [[nodiscard]] const std::unordered_set<std::string>& tracking_registrables();

  StudyConfig config_;

  /// Guards lazy pool creation: run_report() may run on the inspector
  /// thread concurrently with the first pool() call on the main thread.
  mutable util::Mutex pool_mutex_;
  bool pool_created_ CBWT_GUARDED_BY(pool_mutex_) = false;
  bool resume_attempted_ = false;
  std::unique_ptr<runtime::ThreadPool> pool_ CBWT_GUARDED_BY(pool_mutex_);

  /// Started last in the constructor, stopped first in the destructor:
  /// its thread must never observe a partially destroyed Study.
  std::unique_ptr<obs::HttpInspector> inspector_;

  std::optional<world::World> world_;
  std::optional<dns::Resolver> resolver_;
  std::optional<browser::ExtensionDataset> dataset_;
  std::optional<pdns::Store> pdns_;
  bool pdns_replicated_ = false;
  std::optional<classify::Classifier> classifier_;
  std::optional<std::vector<classify::Outcome>> outcomes_;
  std::optional<std::vector<net::IpAddress>> observed_ips_;
  std::optional<std::unordered_set<std::string>> tracking_registrables_;
  std::optional<std::vector<net::IpAddress>> completed_ips_;
  std::optional<geoloc::ProbeMesh> mesh_;
  std::optional<geoloc::GeoService> geo_;
  std::optional<std::vector<analysis::Flow>> flows_;
  std::optional<whatif::LocalizationStudy> localization_;
  std::optional<sensitive::Catalog> sensitive_;
};

}  // namespace cbwt::core
