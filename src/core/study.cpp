#include "core/study.h"

#include <algorithm>
#include <unordered_set>

#include "obs/export.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "report/json.h"

namespace cbwt::core {

Study::Study(StudyConfig config) : config_(std::move(config)) {}

util::Rng Study::stage_rng(std::uint64_t label) const {
  // Stateless derivation: stage RNGs depend only on (seed, label), never
  // on the order in which lazy stages are first requested.
  return util::Rng(util::mix64(config_.world.seed ^ util::mix64(label)));
}

const fault::FaultPlan* Study::fault_plan() const noexcept {
  return config_.fault_plan.enabled() ? &config_.fault_plan : nullptr;
}

Study::~Study() = default;

runtime::ThreadPool* Study::pool() {
  if (!pool_created_) {
    pool_created_ = true;
    if (config_.threads != 1) pool_ = std::make_unique<runtime::ThreadPool>(config_.threads);
  }
  return pool_.get();
}

const world::World& Study::world() {
  if (!world_) world_ = world::build_world(config_.world);
  return *world_;
}

const dns::Resolver& Study::resolver() {
  if (!resolver_) resolver_.emplace(world(), config_.resolver);
  return *resolver_;
}

const browser::ExtensionDataset& Study::dataset() {
  if (!dataset_) {
    // Dependencies resolve before the span opens so lazily-triggered
    // stages never appear as children of the stage that tripped them.
    const auto& built_world = world();
    const auto& dns = resolver();
    obs::ScopedSpan span(config_.registry, "study/dataset");
    if (!pdns_) pdns_.emplace();
    auto rng = stage_rng(0xDA7A);
    dataset_ = browser::collect_extension_dataset(built_world, dns, config_.collector,
                                                  rng, &*pdns_);
    span.set_items(dataset_->requests.size());
  }
  return *dataset_;
}

const pdns::Store& Study::pdns_store() {
  (void)dataset();  // ensures the store exists and is fed by the users
  if (!pdns_replicated_) {
    const auto& dns = resolver();
    obs::ScopedSpan span(config_.registry, "study/pdns_replication");
    auto rng = stage_rng(0x9D45);
    pdns::replicate_background(*pdns_, dns, config_.replication, rng, fault_plan(),
                               config_.registry);
    pdns_replicated_ = true;
    span.set_items(pdns_->all_ips().size());
  }
  return *pdns_;
}

const classify::Classifier& Study::classifier() {
  if (!classifier_) {
    auto rng = stage_rng(0xF117);
    const auto lists = filterlist::generate_lists(world(), rng);
    filterlist::Engine engine;
    engine.add_list(filterlist::FilterList("easylist", lists.easylist));
    engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
    classifier_.emplace(std::move(engine), config_.classifier);
  }
  return *classifier_;
}

const std::vector<classify::Outcome>& Study::outcomes() {
  if (!outcomes_) {
    const auto& clf = classifier();
    const auto& data = dataset();
    runtime::ThreadPool* workers = pool();
    obs::ScopedSpan span(config_.registry, "study/classify");
    span.set_items(data.requests.size());
    outcomes_ = clf.run(data, workers, config_.registry);
  }
  return *outcomes_;
}

const std::vector<net::IpAddress>& Study::observed_tracker_ips() {
  if (!observed_ips_) {
    std::unordered_set<net::IpAddress> seen;
    const auto& data = dataset();
    const auto& results = outcomes();
    for (std::size_t i = 0; i < data.requests.size(); ++i) {
      if (classify::is_tracking(results[i].method)) {
        seen.insert(data.requests[i].server_ip);
      }
    }
    observed_ips_.emplace(seen.begin(), seen.end());
    std::sort(observed_ips_->begin(), observed_ips_->end());
  }
  return *observed_ips_;
}

const std::unordered_set<std::string>& Study::tracking_registrables() {
  if (!tracking_registrables_) {
    tracking_registrables_.emplace();
    const auto& data = dataset();
    const auto& results = outcomes();
    for (std::size_t i = 0; i < data.requests.size(); ++i) {
      if (!classify::is_tracking(results[i].method)) continue;
      tracking_registrables_->insert(world().domain(data.requests[i].domain).registrable);
    }
  }
  return *tracking_registrables_;
}

const std::vector<net::IpAddress>& Study::completed_tracker_ips() {
  if (!completed_ips_) {
    // Start from the users' observations, then ask pDNS for every other
    // IP that served the same tracking registrable domains (forward
    // completion, §3.3).
    std::unordered_set<net::IpAddress> ips(observed_tracker_ips().begin(),
                                           observed_tracker_ips().end());
    const auto& store = pdns_store();
    for (const auto& registrable : tracking_registrables()) {
      for (const auto& ip : store.ips_of_registrable(registrable)) ips.insert(ip);
    }
    completed_ips_.emplace(ips.begin(), ips.end());
    std::sort(completed_ips_->begin(), completed_ips_->end());
  }
  return *completed_ips_;
}

const geoloc::GeoService& Study::geo() {
  if (!geo_) {
    const auto& built_world = world();
    runtime::ThreadPool* workers = pool();
    obs::ScopedSpan span(config_.registry, "study/geoloc_panel");
    auto mesh_rng = stage_rng(0x3E0);
    mesh_.emplace(config_.mesh, mesh_rng);
    auto db_rng = stage_rng(0x3E1);
    auto maxmind = geoloc::build_maxmind_like(built_world, config_.commercial, db_rng);
    auto ipapi = geoloc::build_ipapi_like(built_world, maxmind, 0.93, db_rng);
    geo_.emplace(built_world, std::move(maxmind), std::move(ipapi), *mesh_,
                 config_.active, config_.world.seed ^ 0xAC7173ULL, workers,
                 config_.registry, fault_plan());
  }
  return *geo_;
}

const std::vector<analysis::Flow>& Study::flows() {
  if (!flows_) {
    const auto& built_world = world();
    const auto& data = dataset();
    const auto& results = outcomes();
    obs::ScopedSpan span(config_.registry, "study/border_analysis");
    flows_ = analysis::tracking_flows(built_world, data, results);
    span.set_items(flows_->size());
  }
  return *flows_;
}

analysis::FlowAnalyzer Study::analyzer(geoloc::Tool tool) {
  return analysis::FlowAnalyzer(geo(), tool);
}

const whatif::LocalizationStudy& Study::localization() {
  if (!localization_) {
    localization_.emplace(world(), geo(), geoloc::Tool::ActiveIpmap);
    localization_->load(dataset(), outcomes());
  }
  return *localization_;
}

const sensitive::Catalog& Study::sensitive_catalog() {
  if (!sensitive_) {
    auto rng = stage_rng(0x5E45);
    sensitive_ = sensitive::detect_sensitive_publishers(world(), config_.sensitive, rng);
  }
  return *sensitive_;
}

Study::IspRun Study::run_isp_snapshot(const netflow::IspProfile& isp,
                                      const netflow::Snapshot& snapshot) {
  // The join list is the pipeline's completed tracker IP set, windowed to
  // the snapshot day by the pDNS validity of each (tracking domain, IP)
  // pair — never the whole store, which also holds clean-service records.
  (void)completed_tracker_ips();
  const auto& store = pdns_store();
  const auto& registrables = tracking_registrables();
  const auto& built_world = world();
  const auto& dns = resolver();
  runtime::ThreadPool* workers = pool();

  obs::ScopedSpan span(config_.registry, "study/isp_snapshot");
  netflow::TrackerIpIndex index;
  for (const auto& registrable : registrables) {
    for (const auto& ip : store.ips_of_registrable_at(registrable, snapshot.day)) {
      index.add(ip);
    }
  }

  std::uint64_t label = 0x15B0 ^ util::mix64(static_cast<std::uint64_t>(snapshot.day));
  for (const char c : isp.name) label = util::mix64(label ^ static_cast<std::uint64_t>(c));
  // The sharded generator derives its per-shard streams from this seed;
  // it matches the old serial stage_rng(label) derivation point.
  const std::uint64_t seed = util::mix64(config_.world.seed ^ util::mix64(label));
  const auto exported = netflow::generate_snapshot_sharded(
      built_world, dns, isp, snapshot, config_.netflow, seed, workers,
      config_.registry, fault_plan());
  IspRun run;
  run.exported_records = exported.records.size();
  run.collection = netflow::collect_sharded(exported.records, index, isp, workers,
                                            config_.registry, fault_plan());
  run.flows = run.collection.flows(std::string(isp.country));
  span.set_items(run.exported_records);
  return run;
}

std::string Study::run_report() {
  // Pool counters are a point-in-time snapshot; refresh them so the
  // report reflects the pool's state at export.
  if (pool_ != nullptr) obs::record_pool_stats(config_.registry, *pool_);

  report::JsonWriter json;
  json.begin_object();
  json.key("name").value("cbwt_core_run_report");
  json.key("seed").value(config_.world.seed);
  json.key("scale").value(config_.world.scale);
  json.key("threads").value(static_cast<std::uint64_t>(config_.threads));
  json.key("fault");
  json.begin_object();
  const bool fault_enabled = config_.fault_plan.enabled();
  json.key("enabled").value(fault_enabled);
  if (fault_enabled) {
    json.key("seed").value(config_.fault_plan.seed);
    // Degradation per stage: every cbwt_fault_<site>_degraded_total the
    // run's stages published, keyed by injection site. Counters are read
    // from the snapshot, never created here.
    json.key("degraded");
    json.begin_object();
    if (config_.registry != nullptr) {
      constexpr std::string_view kPrefix = "cbwt_fault_";
      constexpr std::string_view kSuffix = "_degraded_total";
      for (const auto& [name, count] : config_.registry->counters()) {
        if (name.starts_with(kPrefix) && name.ends_with(kSuffix)) {
          json.key(name.substr(kPrefix.size(),
                               name.size() - kPrefix.size() - kSuffix.size()))
              .value(count);
        }
      }
    }
    json.end_object();
  }
  json.end_object();
  json.key("obs");
  if (config_.registry != nullptr) {
    obs::write_json(*config_.registry, json);
  } else {
    const obs::Registry empty;
    obs::write_json(empty, json);
  }
  json.end_object();
  return json.str();
}

}  // namespace cbwt::core
