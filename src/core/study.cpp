#include "core/study.h"

#include <algorithm>
#include <unordered_set>

namespace cbwt::core {

Study::Study(StudyConfig config) : config_(std::move(config)) {}

util::Rng Study::stage_rng(std::uint64_t label) const {
  // Stateless derivation: stage RNGs depend only on (seed, label), never
  // on the order in which lazy stages are first requested.
  return util::Rng(util::mix64(config_.world.seed ^ util::mix64(label)));
}

Study::~Study() = default;

runtime::ThreadPool* Study::pool() {
  if (!pool_created_) {
    pool_created_ = true;
    if (config_.threads != 1) pool_ = std::make_unique<runtime::ThreadPool>(config_.threads);
  }
  return pool_.get();
}

const world::World& Study::world() {
  if (!world_) world_ = world::build_world(config_.world);
  return *world_;
}

const dns::Resolver& Study::resolver() {
  if (!resolver_) resolver_.emplace(world(), config_.resolver);
  return *resolver_;
}

const browser::ExtensionDataset& Study::dataset() {
  if (!dataset_) {
    if (!pdns_) pdns_.emplace();
    auto rng = stage_rng(0xDA7A);
    dataset_ = browser::collect_extension_dataset(world(), resolver(), config_.collector,
                                                  rng, &*pdns_);
  }
  return *dataset_;
}

const pdns::Store& Study::pdns_store() {
  (void)dataset();  // ensures the store exists and is fed by the users
  if (!pdns_replicated_) {
    auto rng = stage_rng(0x9D45);
    pdns::replicate_background(*pdns_, resolver(), config_.replication, rng);
    pdns_replicated_ = true;
  }
  return *pdns_;
}

const classify::Classifier& Study::classifier() {
  if (!classifier_) {
    auto rng = stage_rng(0xF117);
    const auto lists = filterlist::generate_lists(world(), rng);
    filterlist::Engine engine;
    engine.add_list(filterlist::FilterList("easylist", lists.easylist));
    engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
    classifier_.emplace(std::move(engine), config_.classifier);
  }
  return *classifier_;
}

const std::vector<classify::Outcome>& Study::outcomes() {
  if (!outcomes_) outcomes_ = classifier().run(dataset(), pool());
  return *outcomes_;
}

const std::vector<net::IpAddress>& Study::observed_tracker_ips() {
  if (!observed_ips_) {
    std::unordered_set<net::IpAddress> seen;
    const auto& data = dataset();
    const auto& results = outcomes();
    for (std::size_t i = 0; i < data.requests.size(); ++i) {
      if (classify::is_tracking(results[i].method)) {
        seen.insert(data.requests[i].server_ip);
      }
    }
    observed_ips_.emplace(seen.begin(), seen.end());
    std::sort(observed_ips_->begin(), observed_ips_->end());
  }
  return *observed_ips_;
}

const std::unordered_set<std::string>& Study::tracking_registrables() {
  if (!tracking_registrables_) {
    tracking_registrables_.emplace();
    const auto& data = dataset();
    const auto& results = outcomes();
    for (std::size_t i = 0; i < data.requests.size(); ++i) {
      if (!classify::is_tracking(results[i].method)) continue;
      tracking_registrables_->insert(world().domain(data.requests[i].domain).registrable);
    }
  }
  return *tracking_registrables_;
}

const std::vector<net::IpAddress>& Study::completed_tracker_ips() {
  if (!completed_ips_) {
    // Start from the users' observations, then ask pDNS for every other
    // IP that served the same tracking registrable domains (forward
    // completion, §3.3).
    std::unordered_set<net::IpAddress> ips(observed_tracker_ips().begin(),
                                           observed_tracker_ips().end());
    const auto& store = pdns_store();
    for (const auto& registrable : tracking_registrables()) {
      for (const auto& ip : store.ips_of_registrable(registrable)) ips.insert(ip);
    }
    completed_ips_.emplace(ips.begin(), ips.end());
    std::sort(completed_ips_->begin(), completed_ips_->end());
  }
  return *completed_ips_;
}

const geoloc::GeoService& Study::geo() {
  if (!geo_) {
    auto mesh_rng = stage_rng(0x3E0);
    mesh_.emplace(config_.mesh, mesh_rng);
    auto db_rng = stage_rng(0x3E1);
    auto maxmind = geoloc::build_maxmind_like(world(), config_.commercial, db_rng);
    auto ipapi = geoloc::build_ipapi_like(world(), maxmind, 0.93, db_rng);
    geo_.emplace(world(), std::move(maxmind), std::move(ipapi), *mesh_,
                 config_.active, config_.world.seed ^ 0xAC7173ULL, pool());
  }
  return *geo_;
}

const std::vector<analysis::Flow>& Study::flows() {
  if (!flows_) flows_ = analysis::tracking_flows(world(), dataset(), outcomes());
  return *flows_;
}

analysis::FlowAnalyzer Study::analyzer(geoloc::Tool tool) {
  return analysis::FlowAnalyzer(geo(), tool);
}

const whatif::LocalizationStudy& Study::localization() {
  if (!localization_) {
    localization_.emplace(world(), geo(), geoloc::Tool::ActiveIpmap);
    localization_->load(dataset(), outcomes());
  }
  return *localization_;
}

const sensitive::Catalog& Study::sensitive_catalog() {
  if (!sensitive_) {
    auto rng = stage_rng(0x5E45);
    sensitive_ = sensitive::detect_sensitive_publishers(world(), config_.sensitive, rng);
  }
  return *sensitive_;
}

Study::IspRun Study::run_isp_snapshot(const netflow::IspProfile& isp,
                                      const netflow::Snapshot& snapshot) {
  // The join list is the pipeline's completed tracker IP set, windowed to
  // the snapshot day by the pDNS validity of each (tracking domain, IP)
  // pair — never the whole store, which also holds clean-service records.
  (void)completed_tracker_ips();
  const auto& store = pdns_store();
  netflow::TrackerIpIndex index;
  for (const auto& registrable : tracking_registrables()) {
    for (const auto& ip : store.ips_of_registrable_at(registrable, snapshot.day)) {
      index.add(ip);
    }
  }

  std::uint64_t label = 0x15B0 ^ util::mix64(static_cast<std::uint64_t>(snapshot.day));
  for (const char c : isp.name) label = util::mix64(label ^ static_cast<std::uint64_t>(c));
  // The sharded generator derives its per-shard streams from this seed;
  // it matches the old serial stage_rng(label) derivation point.
  const std::uint64_t seed = util::mix64(config_.world.seed ^ util::mix64(label));
  const auto exported = netflow::generate_snapshot_sharded(
      world(), resolver(), isp, snapshot, config_.netflow, seed, pool());
  IspRun run;
  run.exported_records = exported.records.size();
  run.collection = netflow::collect_sharded(exported.records, index, isp, pool());
  run.flows = run.collection.flows(std::string(isp.country));
  return run;
}

}  // namespace cbwt::core
