#include "core/study.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <unordered_set>

#include "browser/dataset_store.h"
#include "netflow/join.h"
#include "netflow/snapshot_store.h"
#include "store/dataset.h"
#include "obs/export.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "pdns/checkpoint.h"
#include "report/json.h"
#include "store/checkpoint.h"
#include "store/mapped_file.h"
#include "util/contract.h"

namespace cbwt::core {

Study::Study(StudyConfig config) : config_(std::move(config)) {
  if (config_.registry != nullptr && config_.trace != nullptr) {
    config_.registry->set_trace_buffer(config_.trace);
  }
  if (config_.inspector.enabled) {
    obs::InspectorHandlers handlers;
    if (config_.registry != nullptr) {
      handlers.metrics = [this] { return obs::to_prometheus(*config_.registry); };
    }
    handlers.report = [this] { return run_report(); };
    if (config_.trace != nullptr) {
      handlers.trace = [this] { return obs::to_chrome_trace(*config_.trace); };
    }
    inspector_ = std::make_unique<obs::HttpInspector>(config_.inspector,
                                                      std::move(handlers));
  }
}

util::Rng Study::stage_rng(std::uint64_t label) const {
  // Stateless derivation: stage RNGs depend only on (seed, label), never
  // on the order in which lazy stages are first requested.
  return util::Rng(util::mix64(config_.world.seed ^ util::mix64(label)));
}

const fault::FaultPlan* Study::fault_plan() const noexcept {
  return config_.fault_plan.enabled() ? &config_.fault_plan : nullptr;
}

Study::~Study() {
  // The inspector thread calls run_report(), which touches the pool and
  // registry: stop it before any other member goes away.
  inspector_.reset();
}

runtime::ThreadPool* Study::pool() {
  util::MutexLock lock(pool_mutex_);
  if (!pool_created_) {
    pool_created_ = true;
    if (config_.threads != 1) pool_ = std::make_unique<runtime::ThreadPool>(config_.threads);
  }
  return pool_.get();
}

const world::World& Study::world() {
  if (!world_) world_ = world::build_world(config_.world);
  return *world_;
}

const dns::Resolver& Study::resolver() {
  if (!resolver_) resolver_.emplace(world(), config_.resolver);
  return *resolver_;
}

void Study::maybe_resume() {
  if (resume_attempted_ || config_.storage.resume_from.empty()) return;
  resume_attempted_ = true;
  const std::string& dir = config_.storage.resume_from;
  obs::ScopedSpan span(config_.registry, "study/resume");
  const auto manifest = store::read_manifest(dir + "/manifest.txt");
  // A checkpoint binds its outputs to (seed, scale); resuming under a
  // different config would silently diverge from the straight-through
  // run, so mismatch is an error, not a warning.
  const auto seed = manifest.get_u64("seed");
  if (!seed || *seed != config_.world.seed) {
    throw store::StoreError("study: checkpoint '" + dir + "' has a different seed");
  }
  const auto scale = manifest.get_f64("world_scale");
  if (!scale || *scale != config_.world.scale) {
    throw store::StoreError("study: checkpoint '" + dir + "' has a different scale");
  }
  browser::ExtensionDataset data;
  data.requests = browser::load_requests(dir + "/dataset.rec", dir + "/dataset.blob");
  data.first_party_visits = manifest.get_u64("dataset_first_party_visits").value_or(0);
  data.distinct_publishers = manifest.get_u64("dataset_distinct_publishers").value_or(0);
  dataset_ = std::move(data);
  pdns_ = pdns::load_store(dir + "/pdns.rec", dir + "/pdns.blob");
  pdns_replicated_ = manifest.get_u64("pdns_replicated").value_or(0) != 0;
  span.set_items(dataset_->requests.size());
}

void Study::save_checkpoint(const std::string& directory) {
  CBWT_EXPECTS(!directory.empty());
  (void)dataset();  // the minimal checkpointable state (collection feeds pDNS)
  std::filesystem::create_directories(directory);
  obs::ScopedSpan span(config_.registry, "study/checkpoint");
  browser::save_requests(*dataset_, directory + "/dataset.rec",
                         directory + "/dataset.blob");
  pdns::save_store(*pdns_, directory + "/pdns.rec", directory + "/pdns.blob");
  store::Manifest manifest;
  manifest.set_u64("seed", config_.world.seed);
  manifest.set_f64("world_scale", config_.world.scale);
  manifest.set_u64("dataset_requests", dataset_->requests.size());
  manifest.set_u64("dataset_first_party_visits", dataset_->first_party_visits);
  manifest.set_u64("dataset_distinct_publishers", dataset_->distinct_publishers);
  manifest.set_u64("pdns_records", pdns_->record_count());
  manifest.set_u64("pdns_replicated", pdns_replicated_ ? 1 : 0);
  manifest.set("file", "dataset.rec");
  manifest.set("file", "dataset.blob");
  manifest.set("file", "pdns.rec");
  manifest.set("file", "pdns.blob");
  store::write_manifest(directory + "/manifest.txt", manifest);
  span.set_items(dataset_->requests.size());
}

const browser::ExtensionDataset& Study::dataset() {
  if (!dataset_) maybe_resume();
  if (!dataset_) {
    // Dependencies resolve before the span opens so lazily-triggered
    // stages never appear as children of the stage that tripped them.
    const auto& built_world = world();
    const auto& dns = resolver();
    obs::ScopedSpan span(config_.registry, "study/dataset");
    if (!pdns_) pdns_.emplace();
    auto rng = stage_rng(0xDA7A);
    dataset_ = browser::collect_extension_dataset(built_world, dns, config_.collector,
                                                  rng, &*pdns_);
    span.set_items(dataset_->requests.size());
  }
  return *dataset_;
}

const pdns::Store& Study::pdns_store() {
  (void)dataset();  // ensures the store exists and is fed by the users
  if (!pdns_replicated_) {
    const auto& dns = resolver();
    obs::ScopedSpan span(config_.registry, "study/pdns_replication");
    auto rng = stage_rng(0x9D45);
    pdns::replicate_background(*pdns_, dns, config_.replication, rng, fault_plan(),
                               config_.registry);
    pdns_replicated_ = true;
    span.set_items(pdns_->all_ips().size());
  }
  return *pdns_;
}

const classify::Classifier& Study::classifier() {
  if (!classifier_) {
    auto rng = stage_rng(0xF117);
    const auto lists = filterlist::generate_lists(world(), rng);
    filterlist::Engine engine;
    engine.add_list(filterlist::FilterList("easylist", lists.easylist));
    engine.add_list(filterlist::FilterList("easyprivacy", lists.easyprivacy));
    classifier_.emplace(std::move(engine), config_.classifier);
  }
  return *classifier_;
}

const std::vector<classify::Outcome>& Study::outcomes() {
  if (!outcomes_) {
    const auto& clf = classifier();
    const auto& data = dataset();
    runtime::ThreadPool* workers = pool();
    obs::ScopedSpan span(config_.registry, "study/classify");
    span.set_items(data.requests.size());
    outcomes_ = clf.run(data, workers, config_.registry);
  }
  return *outcomes_;
}

const std::vector<net::IpAddress>& Study::observed_tracker_ips() {
  if (!observed_ips_) {
    std::unordered_set<net::IpAddress> seen;
    const auto& data = dataset();
    const auto& results = outcomes();
    for (std::size_t i = 0; i < data.requests.size(); ++i) {
      if (classify::is_tracking(results[i].method)) {
        seen.insert(data.requests[i].server_ip);
      }
    }
    observed_ips_.emplace(seen.begin(), seen.end());
    std::sort(observed_ips_->begin(), observed_ips_->end());
  }
  return *observed_ips_;
}

const std::unordered_set<std::string>& Study::tracking_registrables() {
  if (!tracking_registrables_) {
    tracking_registrables_.emplace();
    const auto& data = dataset();
    const auto& results = outcomes();
    for (std::size_t i = 0; i < data.requests.size(); ++i) {
      if (!classify::is_tracking(results[i].method)) continue;
      tracking_registrables_->insert(world().domain(data.requests[i].domain).registrable);
    }
  }
  return *tracking_registrables_;
}

const std::vector<net::IpAddress>& Study::completed_tracker_ips() {
  if (!completed_ips_) {
    // Start from the users' observations, then ask pDNS for every other
    // IP that served the same tracking registrable domains (forward
    // completion, §3.3).
    std::unordered_set<net::IpAddress> ips(observed_tracker_ips().begin(),
                                           observed_tracker_ips().end());
    const auto& store = pdns_store();
    for (const auto& registrable : tracking_registrables()) {
      for (const auto& ip : store.ips_of_registrable(registrable)) ips.insert(ip);
    }
    completed_ips_.emplace(ips.begin(), ips.end());
    std::sort(completed_ips_->begin(), completed_ips_->end());
  }
  return *completed_ips_;
}

const geoloc::GeoService& Study::geo() {
  if (!geo_) {
    const auto& built_world = world();
    runtime::ThreadPool* workers = pool();
    obs::ScopedSpan span(config_.registry, "study/geoloc_panel");
    auto mesh_rng = stage_rng(0x3E0);
    mesh_.emplace(config_.mesh, mesh_rng);
    auto db_rng = stage_rng(0x3E1);
    auto maxmind = geoloc::build_maxmind_like(built_world, config_.commercial, db_rng);
    auto ipapi = geoloc::build_ipapi_like(built_world, maxmind, 0.93, db_rng);
    geo_.emplace(built_world, std::move(maxmind), std::move(ipapi), *mesh_,
                 config_.active, config_.world.seed ^ 0xAC7173ULL, workers,
                 config_.registry, fault_plan());
  }
  return *geo_;
}

const std::vector<analysis::Flow>& Study::flows() {
  if (!flows_) {
    const auto& built_world = world();
    const auto& data = dataset();
    const auto& results = outcomes();
    obs::ScopedSpan span(config_.registry, "study/border_analysis");
    flows_ = analysis::tracking_flows(built_world, data, results);
    span.set_items(flows_->size());
  }
  return *flows_;
}

analysis::FlowAnalyzer Study::analyzer(geoloc::Tool tool) {
  return analysis::FlowAnalyzer(geo(), tool);
}

const whatif::LocalizationStudy& Study::localization() {
  if (!localization_) {
    localization_.emplace(world(), geo(), geoloc::Tool::ActiveIpmap);
    localization_->load(dataset(), outcomes());
  }
  return *localization_;
}

const sensitive::Catalog& Study::sensitive_catalog() {
  if (!sensitive_) {
    auto rng = stage_rng(0x5E45);
    sensitive_ = sensitive::detect_sensitive_publishers(world(), config_.sensitive, rng);
  }
  return *sensitive_;
}

Study::IspRun Study::run_isp_snapshot(const netflow::IspProfile& isp,
                                      const netflow::Snapshot& snapshot) {
  // The join list is the pipeline's completed tracker IP set, windowed to
  // the snapshot day by the pDNS validity of each (tracking domain, IP)
  // pair — never the whole store, which also holds clean-service records.
  (void)completed_tracker_ips();
  const auto& store = pdns_store();
  const auto& registrables = tracking_registrables();
  const auto& built_world = world();
  const auto& dns = resolver();
  runtime::ThreadPool* workers = pool();

  obs::ScopedSpan span(config_.registry, "study/isp_snapshot");
  netflow::TrackerIpIndex index;
  for (const auto& registrable : registrables) {
    for (const auto& ip : store.ips_of_registrable_at(registrable, snapshot.day)) {
      index.add(ip);
    }
  }

  std::uint64_t label = 0x15B0 ^ util::mix64(static_cast<std::uint64_t>(snapshot.day));
  for (const char c : isp.name) label = util::mix64(label ^ static_cast<std::uint64_t>(c));
  // The sharded generator derives its per-shard streams from this seed;
  // it matches the old serial stage_rng(label) derivation point.
  const std::uint64_t seed = util::mix64(config_.world.seed ^ util::mix64(label));
  IspRun run;
  if (config_.storage.mode == store::Mode::StoreBacked) {
    // Spill the snapshot to a record file as it is generated, then
    // stream it back through the collector in bounded chunks: snapshot
    // size is bounded by disk, resident memory by the chunk size. Both
    // legs reuse the in-memory code paths, so the results match them
    // bit for bit.
    CBWT_EXPECTS(!config_.storage.directory.empty());
    std::filesystem::create_directories(config_.storage.directory);
    std::string stem;
    for (const char c : isp.name) {
      stem.push_back((std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_');
    }
    const std::string path = config_.storage.directory + "/netflow_" + stem + "_day" +
                             std::to_string(snapshot.day) + ".rec";
    const auto counts = netflow::generate_snapshot_to_store(
        built_world, dns, isp, snapshot, config_.netflow, seed, workers, path,
        config_.registry, fault_plan());
    run.exported_records = counts.records;
    // The collect leg is the out-of-core radix join: partition the
    // snapshot into compressed flow pages beside the record file, probe
    // against per-partition tracker tables. Bit-identical to the
    // in-memory collect_sharded branch below (the executable spec).
    netflow::JoinConfig join_config;
    join_config.spill_directory =
        config_.storage.directory + "/join_" + stem + "_day" +
        std::to_string(snapshot.day);
    join_config.partitions = config_.storage.join_partitions;
    join_config.chunk_records = config_.storage.chunk_records;
    join_config.spill_min_shard_records = config_.storage.join_spill_min_shard_records;
    join_config.spill_max_shards = config_.storage.join_spill_max_shards;
    run.collection = netflow::join_flows(
        store::RecordSource<netflow::WireCodec>(
            netflow::SnapshotReader(path, config_.registry)),
        index, isp, join_config, workers, config_.registry, fault_plan());
  } else {
    const auto exported = netflow::generate_snapshot_sharded(
        built_world, dns, isp, snapshot, config_.netflow, seed, workers,
        config_.registry, fault_plan());
    run.exported_records = exported.records.size();
    run.collection = netflow::collect_sharded(exported.records, index, isp, workers,
                                              config_.registry, fault_plan());
  }
  run.flows = run.collection.flows(std::string(isp.country));
  span.set_items(run.exported_records);
  return run;
}

std::string Study::run_report() {
  // Pool counters are a point-in-time snapshot; refresh them so the
  // report reflects the pool's state at export. The pointer is read
  // under the pool mutex (the inspector thread may be here while the
  // main thread first creates the pool); the pool itself is safe to
  // snapshot concurrently and outlives every reader of this copy.
  runtime::ThreadPool* workers = nullptr;
  {
    util::MutexLock lock(pool_mutex_);
    workers = pool_.get();
  }
  if (workers != nullptr) obs::record_pool_stats(config_.registry, *workers);

  report::JsonWriter json;
  json.begin_object();
  json.key("name").value("cbwt_core_run_report");
  json.key("seed").value(config_.world.seed);
  json.key("scale").value(config_.world.scale);
  json.key("threads").value(static_cast<std::uint64_t>(config_.threads));
  json.key("fault");
  json.begin_object();
  const bool fault_enabled = config_.fault_plan.enabled();
  json.key("enabled").value(fault_enabled);
  if (fault_enabled) {
    json.key("seed").value(config_.fault_plan.seed);
    // Degradation per stage: every cbwt_fault_<site>_degraded_total the
    // run's stages published, keyed by injection site. Counters are read
    // from the snapshot, never created here.
    json.key("degraded");
    json.begin_object();
    if (config_.registry != nullptr) {
      constexpr std::string_view kPrefix = "cbwt_fault_";
      constexpr std::string_view kSuffix = "_degraded_total";
      for (const auto& [name, count] : config_.registry->counters()) {
        if (name.starts_with(kPrefix) && name.ends_with(kSuffix)) {
          json.key(name.substr(kPrefix.size(),
                               name.size() - kPrefix.size() - kSuffix.size()))
              .value(count);
        }
      }
    }
    json.end_object();
  }
  json.end_object();
  json.key("obs");
  if (config_.registry != nullptr) {
    obs::write_json(*config_.registry, json);
  } else {
    const obs::Registry empty;
    obs::write_json(empty, json);
  }
  json.end_object();
  return json.str();
}

}  // namespace cbwt::core
